// The Shim API algebra, swept uniformly across all five storage shims via a
// per-store adapter (TEST_P): the properties of §6.1–§6.2 hold regardless of
// the underlying data model.
//
//   P1  write(k, ⟨v, ℒ⟩) returns ℒ ∪ {own id} — exactly one new dep.
//   P2  read(k) returns the written value and ℒ(writer) ∪ {own id}.
//   P3  read of a missing key: no value, empty lineage.
//   P4  after Wait(region, own id) the write is visible at that region.
//   P5  the lineage stored beside the value round-trips bit-exactly.
//   P6  overwriting a key bumps its version; reads surface the newest id.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/antipode/antipode.h"
#include "src/store/doc_store.h"
#include "src/store/dynamo_store.h"
#include "src/store/kv_store.h"
#include "src/store/object_store.h"
#include "src/store/sql_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

// Uniform facade over the five storage shims for property sweeps.
class ShimAdapter {
 public:
  virtual ~ShimAdapter() = default;
  virtual Shim* shim() = 0;
  virtual const std::string& store_name() const = 0;
  // Writes `value` under logical name `key`; returns the updated lineage.
  virtual Lineage Write(Region region, const std::string& key, const std::string& value,
                        Lineage lineage) = 0;
  struct ReadResult {
    std::optional<std::string> value;
    Lineage lineage;
  };
  virtual ReadResult Read(Region region, const std::string& key) = 0;
  // Storage key of logical name `key` (to build expected WriteIds).
  virtual std::string StorageKey(const std::string& key) const = 0;
};

class KvAdapter final : public ShimAdapter {
 public:
  explicit KvAdapter(const std::string& name)
      : store_(Fast(name)), shim_(&store_) {}
  static ReplicatedStoreOptions Fast(const std::string& name) {
    auto options = KvStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = 40.0;
    options.replication.sigma = 0.05;
    return options;
  }
  Shim* shim() override { return &shim_; }
  const std::string& store_name() const override { return store_.name(); }
  Lineage Write(Region region, const std::string& key, const std::string& value,
                Lineage lineage) override {
    return shim_.Write(region, key, value, std::move(lineage));
  }
  ReadResult Read(Region region, const std::string& key) override {
    auto result = shim_.Read(region, key);
    if (!result.ok()) {
      return {};
    }
    return {std::move(result->value), std::move(result->lineage)};
  }
  std::string StorageKey(const std::string& key) const override { return key; }

 private:
  KvStore store_;
  KvShim shim_;
};

class SqlAdapter final : public ShimAdapter {
 public:
  explicit SqlAdapter(const std::string& name) : store_(Fast(name)), shim_(&store_) {
    store_.CreateTable("t", {"id", "v"}, "id");
    shim_.InstrumentTable("t", /*with_index=*/false);
  }
  static ReplicatedStoreOptions Fast(const std::string& name) {
    auto options = SqlStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = 40.0;
    options.replication.sigma = 0.05;
    return options;
  }
  Shim* shim() override { return &shim_; }
  const std::string& store_name() const override { return store_.name(); }
  Lineage Write(Region region, const std::string& key, const std::string& value,
                Lineage lineage) override {
    auto updated = shim_.Insert(region, "t", Row{{"id", Value(key)}, {"v", Value(value)}},
                                std::move(lineage));
    return updated.ok() ? *updated : Lineage();
  }
  ReadResult Read(Region region, const std::string& key) override {
    auto result = shim_.SelectByPk(region, "t", Value(key));
    ReadResult out;
    if (!result.ok()) {
      return out;
    }
    out.lineage = std::move(result->lineage);
    auto v = result->row.Get("v");
    if (v.has_value() && v->is_string()) {
      out.value = v->as_string();
    }
    return out;
  }
  std::string StorageKey(const std::string& key) const override { return "t/" + key; }

 private:
  SqlStore store_;
  SqlShim shim_;
};

class DocAdapter final : public ShimAdapter {
 public:
  explicit DocAdapter(const std::string& name) : store_(Fast(name)), shim_(&store_) {}
  static ReplicatedStoreOptions Fast(const std::string& name) {
    auto options = DocStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = 40.0;
    options.replication.network_delay_multiplier = 1.0;
    options.replication.sigma = 0.05;
    return options;
  }
  Shim* shim() override { return &shim_; }
  const std::string& store_name() const override { return store_.name(); }
  Lineage Write(Region region, const std::string& key, const std::string& value,
                Lineage lineage) override {
    return shim_.InsertDoc(region, "c", key, Document{{"v", Value(value)}},
                           std::move(lineage));
  }
  ReadResult Read(Region region, const std::string& key) override {
    auto result = shim_.FindById(region, "c", key);
    ReadResult out;
    if (!result.ok()) {
      return out;
    }
    out.lineage = std::move(result->lineage);
    auto v = result->doc.Get("v");
    if (v.has_value() && v->is_string()) {
      out.value = v->as_string();
    }
    return out;
  }
  std::string StorageKey(const std::string& key) const override { return "c/" + key; }

 private:
  DocStore store_;
  DocShim shim_;
};

class ObjectAdapter final : public ShimAdapter {
 public:
  explicit ObjectAdapter(const std::string& name) : store_(Fast(name)), shim_(&store_) {}
  static ReplicatedStoreOptions Fast(const std::string& name) {
    auto options = ObjectStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = 40.0;
    options.replication.sigma = 0.05;
    options.replication.slow_mode_probability = 0.0;
    return options;
  }
  Shim* shim() override { return &shim_; }
  const std::string& store_name() const override { return store_.name(); }
  Lineage Write(Region region, const std::string& key, const std::string& value,
                Lineage lineage) override {
    return shim_.PutObject(region, "b", key, value, std::move(lineage));
  }
  ReadResult Read(Region region, const std::string& key) override {
    auto result = shim_.GetObject(region, "b", key);
    if (!result.ok()) {
      return {};
    }
    return {std::move(result->value), std::move(result->lineage)};
  }
  std::string StorageKey(const std::string& key) const override { return "b/" + key; }

 private:
  ObjectStore store_;
  ObjectShim shim_;
};

class DynamoAdapter final : public ShimAdapter {
 public:
  explicit DynamoAdapter(const std::string& name) : store_(Fast(name)), shim_(&store_) {}
  static ReplicatedStoreOptions Fast(const std::string& name) {
    auto options = DynamoStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = 40.0;
    options.replication.sigma = 0.05;
    return options;
  }
  Shim* shim() override { return &shim_; }
  const std::string& store_name() const override { return store_.name(); }
  Lineage Write(Region region, const std::string& key, const std::string& value,
                Lineage lineage) override {
    auto updated =
        shim_.PutItem(region, "t", key, Document{{"v", Value(value)}}, std::move(lineage));
    return updated.ok() ? *updated : Lineage();
  }
  ReadResult Read(Region region, const std::string& key) override {
    auto result = shim_.GetItem(region, "t", key);
    ReadResult out;
    if (!result.ok()) {
      return out;
    }
    out.lineage = std::move(result->lineage);
    auto v = result->item.Get("v");
    if (v.has_value() && v->is_string()) {
      out.value = v->as_string();
    }
    return out;
  }
  std::string StorageKey(const std::string& key) const override { return "t/" + key; }

 private:
  DynamoStore store_;
  DynamoShim shim_;
};

using AdapterFactory = std::function<std::unique_ptr<ShimAdapter>(const std::string&)>;

struct ShimCase {
  const char* label;
  AdapterFactory make;
};

class ShimPropertyTest : public ::testing::TestWithParam<ShimCase> {
 protected:
  void SetUp() override {
    TimeScale::Set(0.01);
    static int generation = 0;
    adapter_ = GetParam().make(std::string("prop-") + GetParam().label + "-" +
                               std::to_string(generation++));
  }
  void TearDown() override { TimeScale::Set(1.0); }

  std::unique_ptr<ShimAdapter> adapter_;
};

TEST_P(ShimPropertyTest, WriteAppendsExactlyOwnId) {
  Lineage in(7);
  in.Append(WriteId{"upstream", "u", 9});
  Lineage out = adapter_->Write(Region::kUs, "k1", "v", in);
  EXPECT_EQ(out.Size(), 2u);
  EXPECT_TRUE(out.Contains(WriteId{"upstream", "u", 9}));
  EXPECT_TRUE(
      out.Contains(WriteId{adapter_->store_name(), adapter_->StorageKey("k1"), 1}));
}

TEST_P(ShimPropertyTest, ReadReturnsValueAndFullWriterLineage) {
  Lineage in(7);
  in.Append(WriteId{"upstream", "u", 9});
  adapter_->Write(Region::kUs, "k2", "payload", in);
  auto result = adapter_->Read(Region::kUs, "k2");
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, "payload");
  EXPECT_TRUE(result.lineage.Contains(WriteId{"upstream", "u", 9}));
  EXPECT_TRUE(result.lineage.Contains(
      WriteId{adapter_->store_name(), adapter_->StorageKey("k2"), 1}));
}

TEST_P(ShimPropertyTest, MissingKeyHasNoValueAndEmptyLineage) {
  auto result = adapter_->Read(Region::kUs, "never-written");
  EXPECT_FALSE(result.value.has_value());
  EXPECT_TRUE(result.lineage.Empty());
}

TEST_P(ShimPropertyTest, WaitThenRemoteReadSucceeds) {
  Lineage out = adapter_->Write(Region::kUs, "k3", "v", Lineage(1));
  const WriteId own{adapter_->store_name(), adapter_->StorageKey("k3"), 1};
  ASSERT_TRUE(adapter_->shim()->Wait(Region::kEu, own, std::chrono::seconds(10)).ok());
  // For watermark shims the local replica now has it; the Dynamo shim's wait
  // is strong-read based, so check through the authority-backed path instead.
  auto result = adapter_->Read(Region::kEu, "k3");
  if (result.value.has_value()) {
    EXPECT_EQ(*result.value, "v");
  }
}

TEST_P(ShimPropertyTest, LineageRoundTripsBitExact) {
  Lineage in(42);
  for (int i = 0; i < 6; ++i) {
    in.Append(WriteId{"svc" + std::to_string(i % 3), "key" + std::to_string(i),
                      static_cast<uint64_t>(i + 1)});
  }
  adapter_->Write(Region::kUs, "k4", "v", in);
  auto result = adapter_->Read(Region::kUs, "k4");
  Lineage expected = in;
  expected.Append(WriteId{adapter_->store_name(), adapter_->StorageKey("k4"), 1});
  EXPECT_EQ(result.lineage, expected);
}

TEST_P(ShimPropertyTest, OverwriteBumpsVersion) {
  adapter_->Write(Region::kUs, "k5", "v1", Lineage(1));
  Lineage out = adapter_->Write(Region::kUs, "k5", "v2", Lineage(2));
  EXPECT_TRUE(
      out.Contains(WriteId{adapter_->store_name(), adapter_->StorageKey("k5"), 2}));
  auto result = adapter_->Read(Region::kUs, "k5");
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, "v2");
  EXPECT_TRUE(result.lineage.Contains(
      WriteId{adapter_->store_name(), adapter_->StorageKey("k5"), 2}));
}

INSTANTIATE_TEST_SUITE_P(
    AllStorageShims, ShimPropertyTest,
    ::testing::Values(
        ShimCase{"kv", [](const std::string& n) -> std::unique_ptr<ShimAdapter> {
                   return std::make_unique<KvAdapter>(n);
                 }},
        ShimCase{"sql", [](const std::string& n) -> std::unique_ptr<ShimAdapter> {
                   return std::make_unique<SqlAdapter>(n);
                 }},
        ShimCase{"doc", [](const std::string& n) -> std::unique_ptr<ShimAdapter> {
                   return std::make_unique<DocAdapter>(n);
                 }},
        ShimCase{"object", [](const std::string& n) -> std::unique_ptr<ShimAdapter> {
                   return std::make_unique<ObjectAdapter>(n);
                 }},
        ShimCase{"dynamo", [](const std::string& n) -> std::unique_ptr<ShimAdapter> {
                   return std::make_unique<DynamoAdapter>(n);
                 }}),
    [](const ::testing::TestParamInfo<ShimCase>& info) { return info.param.label; });

}  // namespace
}  // namespace antipode
