// Backend-parameterized enforcement invariants (DESIGN.md §12): every test in
// the value-parameterized fixture runs once per strategy — the native lineage
// backend and the Okapi-style stable-frontier backend — asserting the same
// observable contract: a barrier that returns Ok leaves every dependency
// visible at the barrier region (zero XCY violations, confirmed by the
// backend-independent dry-run checker), deadlines surface as DeadlineExceeded
// rather than hangs, and fault schedules only ever delay enforcement, never
// break it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/antipode/barrier.h"
#include "src/antipode/kv_shim.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/fault/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class EnforcementBackendTest : public ::testing::TestWithParam<EnforcementBackendKind> {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }

  // Store names are global (they key the default visibility cache), so each
  // test × backend instantiation tags its own deployment.
  std::string Tag(const std::string& base) const {
    return base + "-" + std::string(EnforcementBackendKindName(GetParam()));
  }

  BarrierOptions Options(ShimRegistry* registry) const {
    BarrierOptions options;
    options.registry = registry;
    options.backend = GetParam();
    return options;
  }
};

// I1 under both strategies: Ok ⟹ every dependency visible at the barrier
// region, and the (backend-independent) dry-run checker agrees.
TEST_P(EnforcementBackendTest, BarrierImpliesVisibility) {
  constexpr int kStores = 3;
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<KvShim>> shims;
  ShimRegistry registry;
  for (int i = 0; i < kStores; ++i) {
    auto options = KvStore::DefaultOptions(Tag("eb-vis") + std::to_string(i), kRegions);
    options.replication.median_millis = 5.0;
    options.replication.sigma = 0.3;
    stores.push_back(std::make_unique<KvStore>(std::move(options)));
    shims.push_back(std::make_unique<KvShim>(stores.back().get()));
    registry.Register(shims.back().get());
  }

  Rng rng(7);
  for (int request = 0; request < 8; ++request) {
    Lineage lineage(static_cast<uint64_t>(request) + 1);
    std::vector<WriteId> written;
    for (int w = 0; w < 3; ++w) {
      const auto s = static_cast<size_t>(rng.NextBelow(kStores));
      const std::string key = "r" + std::to_string(request) + "w" + std::to_string(w);
      lineage = shims[s]->Write(Region::kUs, key, "value", std::move(lineage));
      written.push_back(lineage.deps().back());
    }
    ASSERT_TRUE(Barrier(lineage, Region::kEu, Options(&registry)).ok());
    for (const WriteId& id : written) {
      EXPECT_TRUE(registry.Lookup(id.store)->IsVisible(Region::kEu, id))
          << id.ToString() << " invisible after Ok barrier";
    }
    const BarrierDryRunResult probe = BarrierDryRun(lineage, Region::kEu, &registry);
    EXPECT_TRUE(probe.consistent);
    EXPECT_TRUE(probe.unmet.empty());
  }
  for (auto& store : stores) {
    store->DrainReplication();
  }
}

// A dependency that cannot replicate in time must surface as DeadlineExceeded
// from either strategy — never a hang, never a false Ok.
TEST_P(EnforcementBackendTest, TimeoutExpires) {
  auto options = KvStore::DefaultOptions(Tag("eb-slow"), kRegions);
  // Slow enough that the 30ms timeout always fires first, but short enough
  // that tearing down the pending apply doesn't dominate the suite.
  options.replication.median_millis = 50000.0;
  options.replication.sigma = 0.05;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  BarrierOptions barrier_options = Options(&registry);
  barrier_options.wait.timeout = Millis(30);
  const Status status = Barrier(lineage, Region::kEu, barrier_options);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

// Repeat barriers over an already-enforced lineage take the memoized zero-wait
// fast path under both strategies.
TEST_P(EnforcementBackendTest, RepeatBarrierIsZeroWait) {
  auto options = KvStore::DefaultOptions(Tag("eb-repeat"), kRegions);
  options.replication.median_millis = 5.0;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  ASSERT_TRUE(Barrier(lineage, Region::kEu, Options(&registry)).ok());
  Counter* zero_wait = MetricsRegistry::Default().GetCounter("barrier.zero_wait");
  const uint64_t before = zero_wait->value();
  ASSERT_TRUE(Barrier(lineage, Region::kEu, Options(&registry)).ok());
  EXPECT_GT(zero_wait->value(), before);
  store.DrainReplication();
}

// A windowed replication stall (the PR-5 fault vocabulary) delays enforcement
// but never breaks it: barriers issued during the stall block, complete Ok
// once the window heals and the backlog replays, and the post-Ok state shows
// zero XCY violations with per-key version order intact.
TEST_P(EnforcementBackendTest, StallScheduleDelaysButNeverBreaks) {
  FaultInjector injector;
  FaultRule stall;
  stall.kind = FaultKind::kStoreStall;
  stall.store = Tag("eb-stall");
  stall.from = Region::kUs;
  stall.to = Region::kEu;
  stall.start_model_ms = 0.0;
  stall.end_model_ms = 120.0;
  injector.Arm(FaultPlan{"backend-stall", 11, {stall}});

  auto options = KvStore::DefaultOptions(Tag("eb-stall"), kRegions);
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.1;
  options.fault_injector = &injector;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  Lineage lineage(1);
  for (int v = 1; v <= 4; ++v) {
    lineage = shim.Write(Region::kUs, "k", "v" + std::to_string(v), std::move(lineage));
  }
  BarrierOptions barrier_options = Options(&registry);
  barrier_options.wait.timeout = Millis(5000);
  ASSERT_TRUE(Barrier(lineage, Region::kEu, barrier_options).ok());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 4));
  const auto read = shim.Read(Region::kEu, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "v4");
  const BarrierDryRunResult probe = BarrierDryRun(lineage, Region::kEu, &registry);
  EXPECT_TRUE(probe.consistent);
  injector.Disarm();
  store.DrainReplication();
}

// A deployment mixing frontier-capable stores with stores that publish no
// visibility state (no cache ⇒ no HLC frontier) must still enforce: the
// stable-frontier backend falls back to per-dependency waits for the latter.
TEST_P(EnforcementBackendTest, MixedFrontierAndFallbackStores) {
  auto cached = KvStore::DefaultOptions(Tag("eb-mixA"), kRegions);
  cached.replication.median_millis = 5.0;
  KvStore store_a(std::move(cached));
  auto uncached = KvStore::DefaultOptions(Tag("eb-mixB"), kRegions);
  uncached.replication.median_millis = 5.0;
  uncached.visibility_cache = nullptr;
  KvStore store_b(std::move(uncached));
  KvShim shim_a(&store_a);
  KvShim shim_b(&store_b);
  EXPECT_TRUE(shim_a.SupportsFrontier());
  EXPECT_FALSE(shim_b.SupportsFrontier());
  ShimRegistry registry;
  registry.Register(&shim_a);
  registry.Register(&shim_b);

  Lineage lineage = shim_a.Write(Region::kUs, "ka", "va", Lineage(1));
  lineage = shim_b.Write(Region::kUs, "kb", "vb", std::move(lineage));
  ASSERT_TRUE(Barrier(lineage, Region::kEu, Options(&registry)).ok());
  EXPECT_TRUE(store_a.IsVisible(Region::kEu, "ka", 1));
  EXPECT_TRUE(store_b.IsVisible(Region::kEu, "kb", 1));
  store_a.DrainReplication();
  store_b.DrainReplication();
}

// Global enforcement across every region, under both strategies.
TEST_P(EnforcementBackendTest, GlobalBarrierCoversAllRegions) {
  const std::vector<Region> three = {Region::kUs, Region::kEu, Region::kSg};
  auto options = KvStore::DefaultOptions(Tag("eb-global"), three);
  options.replication.median_millis = 5.0;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  Lineage lineage = shim.Write(Region::kUs, "g", "v", Lineage(1));
  ASSERT_TRUE(BarrierGlobal(lineage, three, Options(&registry)).ok());
  for (Region region : three) {
    EXPECT_TRUE(store.IsVisible(region, "g", 1));
  }
  store.DrainReplication();
}

// Locality isolation (DESIGN.md §13), under both strategies: a deployment-wide
// barrier that also names a region the dependencies' stores never replicate to
// completes even while that region is fully down — the scope bit for the
// outaged region is clear, so the ⟨store, region⟩ pair is skipped outright
// (counted in barrier.scoped_skip) and no wait can stall on it.
TEST_P(EnforcementBackendTest, OutOfScopePartitionDoesNotBlock) {
  FaultInjector injector;
  FaultRule outage;
  outage.kind = FaultKind::kRegionOutage;
  outage.to = Region::kSg;
  outage.start_model_ms = 0.0;
  outage.end_model_ms = 1e9;  // never heals within this test
  injector.Arm(FaultPlan{"sg-outage", 13, {outage}});

  // Replicates to {US, EU} only, so every write's scope excludes SG.
  auto options = KvStore::DefaultOptions(Tag("eb-scope"), kRegions);
  options.replication.median_millis = 5.0;
  options.fault_injector = &injector;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  ASSERT_EQ(lineage.deps().back().scope & RegionBit(Region::kSg), 0);

  Counter* scoped_skip = MetricsRegistry::Default().GetCounter("barrier.scoped_skip");
  const uint64_t skips_before = scoped_skip->value();
  BarrierOptions barrier_options = Options(&registry);
  barrier_options.wait.timeout = Millis(5000);
  const std::vector<Region> deployment = {Region::kUs, Region::kEu, Region::kSg};
  ASSERT_TRUE(BarrierGlobal(lineage, deployment, barrier_options).ok());
  EXPECT_GT(scoped_skip->value(), skips_before);
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));

  injector.Disarm();
  store.DrainReplication();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EnforcementBackendTest,
    ::testing::Values(EnforcementBackendKind::kLineage, EnforcementBackendKind::kStableFrontier),
    [](const ::testing::TestParamInfo<EnforcementBackendKind>& info) {
      return std::string(EnforcementBackendKindName(info.param));
    });

// --- strategy selection & metadata (not backend-parameterized) --------------

class EnforcementSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }
};

// kInherit resolves the registry's default_backend, and the dispatch counter
// attributes the call to the resolved strategy.
TEST_F(EnforcementSelectionTest, RegistryDefaultBackendDrivesInherit) {
  auto options = KvStore::DefaultOptions("eb-sel", kRegions);
  options.replication.median_millis = 5.0;
  KvStore store(std::move(options));
  KvShim shim(&store);
  ShimRegistry registry(ShimRegistryOptions{
      .name = "test", .default_backend = EnforcementBackendKind::kStableFrontier});
  registry.Register(&shim);

  Counter* frontier_calls = MetricsRegistry::Default().GetCounter(
      "barrier.backend", {{"backend", "stable_frontier"}});
  Counter* lineage_calls =
      MetricsRegistry::Default().GetCounter("barrier.backend", {{"backend", "lineage"}});
  const uint64_t frontier_before = frontier_calls->value();
  const uint64_t lineage_before = lineage_calls->value();

  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  ASSERT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_EQ(frontier_calls->value(), frontier_before + 1);

  // An explicit per-call backend overrides the registry default.
  ASSERT_TRUE(Barrier(lineage, Region::kEu,
                      BarrierOptions{.registry = &registry,
                                     .backend = EnforcementBackendKind::kLineage})
                  .ok());
  EXPECT_EQ(lineage_calls->value(), lineage_before + 1);
  store.DrainReplication();
}

// The strategies' metadata trade: a lineage's wire size grows with its
// dependency count, the frontier cut stays one varint.
TEST_F(EnforcementSelectionTest, MetadataBytesTradeoff) {
  Lineage lineage(1);
  for (int i = 0; i < 32; ++i) {
    lineage.Append(WriteId{"meta-store", "key-" + std::to_string(i), 1});
  }
  const size_t lineage_bytes = EnforcementMetadataBytes(EnforcementBackendKind::kLineage, lineage);
  const size_t cut_bytes =
      EnforcementMetadataBytes(EnforcementBackendKind::kStableFrontier, lineage);
  EXPECT_GT(lineage_bytes, 32u * 8u);
  EXPECT_LE(cut_bytes, 10u);  // one 64-bit varint
  EXPECT_LT(cut_bytes, lineage_bytes);
}

}  // namespace
}  // namespace antipode
