#include "src/antipode/barrier.h"

#include <gtest/gtest.h>

#include <atomic>

#include "src/antipode/kv_shim.h"
#include "src/antipode/lineage_api.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

ReplicatedStoreOptions SlowKv(const std::string& name, double median_millis) {
  auto options = KvStore::DefaultOptions(name, kRegions);
  options.replication.median_millis = median_millis;
  options.replication.sigma = 0.05;
  return options;
}

class BarrierTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(BarrierTest, EmptyLineageReturnsImmediately) {
  ShimRegistry registry;
  EXPECT_TRUE(Barrier(Lineage(1), Region::kUs, BarrierOptions{.registry = &registry}).ok());
}

TEST_F(BarrierTest, BlocksUntilDependencyVisible) {
  KvStore store(SlowKv("b1", 100.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  EXPECT_FALSE(store.IsVisible(Region::kEu, "k", 1));
  EXPECT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
}

TEST_F(BarrierTest, AlreadyVisibleIsFastPath) {
  KvStore store(SlowKv("b2", 1.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  // Origin region: visible immediately.
  const TimePoint start = SystemClock::Instance().Now();
  EXPECT_TRUE(Barrier(lineage, Region::kUs, BarrierOptions{.registry = &registry}).ok());
  EXPECT_LT(SystemClock::Instance().Now() - start, Millis(50));
}

TEST_F(BarrierTest, EnforcesDependenciesFromMultipleStores) {
  KvStore fast(SlowKv("b3-fast", 20.0));
  KvStore slow(SlowKv("b3-slow", 200.0));
  KvShim fast_shim(&fast);
  KvShim slow_shim(&slow);
  ShimRegistry registry;
  registry.Register(&fast_shim);
  registry.Register(&slow_shim);
  Lineage lineage = fast_shim.Write(Region::kUs, "a", "1", Lineage(1));
  lineage = slow_shim.Write(Region::kUs, "b", "2", std::move(lineage));
  EXPECT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(fast.IsVisible(Region::kEu, "a", 1));
  EXPECT_TRUE(slow.IsVisible(Region::kEu, "b", 1));
}

TEST_F(BarrierTest, TimeoutExpires) {
  KvStore store(SlowKv("b4", 1000000.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  Status status = Barrier(lineage, Region::kEu,
                          BarrierOptions{.wait = {.timeout = Millis(30)}, .registry = &registry});
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(BarrierTest, UnknownStoreSkippedByDefault) {
  ShimRegistry registry;
  Lineage lineage(1);
  lineage.Append(WriteId{"not-deployed-yet", "k", 1});
  EXPECT_TRUE(Barrier(lineage, Region::kUs, BarrierOptions{.registry = &registry}).ok());
}

TEST_F(BarrierTest, UnknownStoreFailsWhenStrict) {
  ShimRegistry registry;
  Lineage lineage(1);
  lineage.Append(WriteId{"not-deployed-yet", "k", 1});
  Status status = Barrier(
      lineage, Region::kUs,
      BarrierOptions{.registry = &registry, .ignore_unknown_stores = false});
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(BarrierTest, BarrierCtxUsesCurrentLineage) {
  KvStore store(SlowKv("b5", 50.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  shim.WriteCtx(Region::kUs, "k", "v");
  EXPECT_TRUE(BarrierCtx(Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
}

TEST_F(BarrierTest, BarrierCtxWithoutLineageIsNoOp) {
  ShimRegistry registry;
  EXPECT_TRUE(BarrierCtx(Region::kUs, BarrierOptions{.registry = &registry}).ok());
}

TEST_F(BarrierTest, GlobalBarrierEnforcesAtAllRegions) {
  KvStore store(SlowKv("b6", 60.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  EXPECT_TRUE(
      BarrierGlobal(lineage, kRegions, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(store.IsVisible(Region::kUs, "k", 1));
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
}

TEST_F(BarrierTest, AsyncBarrierInvokesCallback) {
  KvStore store(SlowKv("b7", 50.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  ThreadPool pool(1, "async-barrier");
  std::atomic<bool> done{false};
  std::atomic<bool> ok{false};
  BarrierAsync(lineage, Region::kEu, &pool,
               [&](Status status) {
                 ok = status.ok();
                 done = true;
               },
               BarrierOptions{.registry = &registry});
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(done.load());
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
  pool.Shutdown();
}

TEST_F(BarrierTest, DryRunReportsUnmetDependencies) {
  KvStore store(SlowKv("b8", 1000000.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  auto report = BarrierDryRun(lineage, Region::kEu, &registry);
  EXPECT_FALSE(report.consistent);
  ASSERT_EQ(report.unmet.size(), 1u);
  EXPECT_EQ(report.unmet[0], (WriteId{"b8", "k", 1}));
  EXPECT_TRUE(report.unresolved.empty());
}

TEST_F(BarrierTest, DryRunConsistentWhenVisible) {
  KvStore store(SlowKv("b9", 1.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  auto report = BarrierDryRun(lineage, Region::kUs, &registry);
  EXPECT_TRUE(report.consistent);
  EXPECT_TRUE(report.unmet.empty());
}

TEST_F(BarrierTest, DryRunReportsUnresolvedStores) {
  ShimRegistry registry;
  Lineage lineage(1);
  lineage.Append(WriteId{"ghost-store", "k", 1});
  auto report = BarrierDryRun(lineage, Region::kUs, &registry);
  EXPECT_FALSE(report.consistent);
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_TRUE(report.unmet.empty());
}

TEST_F(BarrierTest, OptionsDryRunProbesWithoutBlocking) {
  KvStore store(SlowKv("b11", 200.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));

  // The non-blocking probe: unmet remotely, met at the origin, never waits.
  const TimePoint start = SystemClock::Instance().Now();
  Status remote = Barrier(lineage, Region::kEu,
                          BarrierOptions{.registry = &registry, .dry_run = true});
  EXPECT_EQ(remote.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(remote.message().find("b11"), std::string::npos);
  EXPECT_TRUE(Barrier(lineage, Region::kUs,
                      BarrierOptions{.registry = &registry, .dry_run = true})
                  .ok());
  EXPECT_LT(SystemClock::Instance().Now() - start, Millis(50));

  // Unknown stores fail the probe when not ignored.
  Lineage ghost(1);
  ghost.Append(WriteId{"ghost-store", "k", 1});
  EXPECT_TRUE(Barrier(ghost, Region::kUs,
                      BarrierOptions{.registry = &registry, .dry_run = true})
                  .ok());
  EXPECT_EQ(Barrier(ghost, Region::kUs,
                    BarrierOptions{.registry = &registry,
                                   .ignore_unknown_stores = false,
                                   .dry_run = true})
                .code(),
            StatusCode::kFailedPrecondition);
  store.DrainReplication();
}

TEST_F(BarrierTest, OptionsAbsoluteDeadlineBoundsTheWait) {
  KvStore store(SlowKv("b12", 500.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));

  // An already-expired absolute deadline loses immediately, even though the
  // relative timeout is unbounded.
  const TimePoint past = SystemClock::Instance().Now() - Millis(1);
  Status status =
      Barrier(lineage, Region::kEu, BarrierOptions{.wait = {.deadline = past}, .registry = &registry});
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);

  // The earlier of {timeout, deadline} wins: a generous deadline does not
  // extend a short timeout.
  const TimePoint start = SystemClock::Instance().Now();
  status = Barrier(lineage, Region::kEu,
                   BarrierOptions{.wait = {.timeout = TimeScale::FromModelMillis(20.0),
                                           .deadline = start + TimeScale::FromModelMillis(5000.0)},
                                  .registry = &registry});
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(SystemClock::Instance().Now() - start, TimeScale::FromModelMillis(400.0));
  store.DrainReplication();
}

TEST_F(BarrierTest, SupersededWriteSatisfiesBarrier) {
  KvStore store(SlowKv("b10", 30.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v1", Lineage(1));
  shim.Write(Region::kUs, "k", "v2", Lineage(2));  // supersedes v1
  // Barrier on the v1 lineage succeeds once *any* >= version is visible.
  EXPECT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_GE(store.Get(Region::kEu, "k")->version, 1u);
}

}  // namespace
}  // namespace antipode
