#include "src/antipode/lineage.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"

namespace antipode {
namespace {

WriteId Id(const std::string& store, const std::string& key, uint64_t version) {
  return WriteId{store, key, version};
}

TEST(WriteIdTest, OrderingAndEquality) {
  EXPECT_EQ(Id("s", "k", 1), Id("s", "k", 1));
  EXPECT_LT(Id("a", "k", 1), Id("b", "k", 1));
  EXPECT_LT(Id("s", "a", 1), Id("s", "b", 1));
  EXPECT_LT(Id("s", "k", 1), Id("s", "k", 2));
}

TEST(WriteIdTest, ToStringIsReadable) {
  EXPECT_EQ(Id("mysql", "posts/1", 3).ToString(), "mysql:posts/1@v3");
}

TEST(WriteIdTest, SerializeRoundTrip) {
  Serializer s;
  Id("store", "key/with/slashes", 123456789).SerializeTo(s);
  Deserializer d(s.data());
  auto restored = WriteId::DeserializeFrom(d);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, Id("store", "key/with/slashes", 123456789));
}

TEST(LineageTest, StartsEmpty) {
  Lineage lineage(7);
  EXPECT_TRUE(lineage.Empty());
  EXPECT_EQ(lineage.Size(), 0u);
  EXPECT_EQ(lineage.id(), 7u);
}

TEST(LineageTest, AppendAndContains) {
  Lineage lineage;
  lineage.Append(Id("s", "k", 1));
  EXPECT_TRUE(lineage.Contains(Id("s", "k", 1)));
  EXPECT_FALSE(lineage.Contains(Id("s", "k", 2)));
  EXPECT_EQ(lineage.Size(), 1u);
}

TEST(LineageTest, AppendIsIdempotent) {
  Lineage lineage;
  lineage.Append(Id("s", "k", 1));
  lineage.Append(Id("s", "k", 1));
  EXPECT_EQ(lineage.Size(), 1u);
}

TEST(LineageTest, AppendCompactsSameKeyToHighestVersion) {
  Lineage lineage;
  lineage.Append(Id("s", "k", 3));
  lineage.Append(Id("s", "k", 1));  // older: subsumed
  EXPECT_EQ(lineage.Size(), 1u);
  EXPECT_TRUE(lineage.Contains(Id("s", "k", 3)));
  lineage.Append(Id("s", "k", 9));  // newer: replaces
  EXPECT_EQ(lineage.Size(), 1u);
  EXPECT_TRUE(lineage.Contains(Id("s", "k", 9)));
  EXPECT_FALSE(lineage.Contains(Id("s", "k", 3)));
}

TEST(LineageTest, CompactionKeepsDistinctKeysAndStores) {
  Lineage lineage;
  lineage.Append(Id("s1", "k", 1));
  lineage.Append(Id("s2", "k", 1));
  lineage.Append(Id("s1", "other", 1));
  EXPECT_EQ(lineage.Size(), 3u);
}

TEST(LineageTest, RemoveDeletesDependency) {
  Lineage lineage;
  lineage.Append(Id("s", "k", 1));
  lineage.Remove(Id("s", "k", 1));
  EXPECT_TRUE(lineage.Empty());
}

TEST(LineageTest, TransferUnionsWithCompaction) {
  Lineage a;
  a.Append(Id("s", "k", 2));
  a.Append(Id("s", "x", 1));
  Lineage b;
  b.Append(Id("s", "k", 5));
  b.Append(Id("t", "y", 1));
  a.Transfer(b);
  EXPECT_EQ(a.Size(), 3u);
  EXPECT_TRUE(a.Contains(Id("s", "k", 5)));
  EXPECT_TRUE(a.Contains(Id("s", "x", 1)));
  EXPECT_TRUE(a.Contains(Id("t", "y", 1)));
}

TEST(LineageTest, TransferIsMonotone) {
  Lineage a;
  a.Append(Id("s", "k", 9));
  Lineage b;
  b.Append(Id("s", "k", 2));
  a.Transfer(b);  // older incoming version must not regress
  EXPECT_TRUE(a.Contains(Id("s", "k", 9)));
}

TEST(LineageTest, DepsForStoreFilters) {
  Lineage lineage;
  lineage.Append(Id("mysql", "a", 1));
  lineage.Append(Id("mysql", "b", 2));
  lineage.Append(Id("redis", "c", 3));
  EXPECT_EQ(lineage.DepsForStore("mysql").size(), 2u);
  EXPECT_EQ(lineage.DepsForStore("redis").size(), 1u);
  EXPECT_EQ(lineage.DepsForStore("s3").size(), 0u);
}

TEST(LineageTest, SerializeRoundTrip) {
  Lineage lineage(99);
  lineage.Append(Id("mysql", "posts/1", 3));
  lineage.Append(Id("sns", "topic/42", 1));
  auto restored = Lineage::Deserialize(lineage.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, lineage);
}

TEST(LineageTest, EmptyLineageSerializesSmall) {
  Lineage lineage(1);
  EXPECT_LE(lineage.WireSize(), 4u);
}

TEST(LineageTest, WireSizeGrowsWithDeps) {
  Lineage lineage(1);
  const size_t empty = lineage.WireSize();
  for (int i = 0; i < 8; ++i) {
    lineage.Append(Id("store", "key" + std::to_string(i), 1));
  }
  EXPECT_GT(lineage.WireSize(), empty + 8 * 8);
  // Paper §7.4: lineages in DSB stayed under 200 bytes.
  EXPECT_LT(lineage.WireSize(), 200u);
}

TEST(LineageTest, DeserializeGarbageFails) {
  EXPECT_FALSE(Lineage::Deserialize("\xFF\xFF\xFF\xFF").ok());
}

// Malformed-wire regression suite: the deserializer's fast path trusts the
// canonical ⟨store, key⟩ order our Serialize emits, so anything violating it
// must be rejected as InvalidArgument — never silently repaired into a
// lineage that other decoders would read differently.

TEST(LineageTest, DeserializeRejectsTruncatedBuffer) {
  Lineage lineage(7);
  lineage.Append(Id("store", "key", 3));
  lineage.Append(Id("store", "other", 1));
  const std::string wire = lineage.Serialize();
  // Every proper prefix (including empty) must fail cleanly.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto result = Lineage::Deserialize(std::string_view(wire).substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of length " << len << " decoded";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << "len=" << len;
  }
  ASSERT_TRUE(Lineage::Deserialize(wire).ok());
}

TEST(LineageTest, DeserializeRejectsTrailingBytes) {
  Lineage lineage(7);
  lineage.Append(Id("s", "k", 1));
  auto result = Lineage::Deserialize(lineage.Serialize() + "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

namespace {
// Hand-assembles a wire blob with the dependencies in the given order,
// bypassing Lineage's sorted invariant. Stores are interned in
// first-appearance order (which matches Serialize's table for sorted inputs
// and yields a deliberately non-canonical table for unsorted ones). Each
// dependency's locality scope is emitted exactly as given (the lineage wire
// carries one scope varint per dependency), so tests can plant masks
// Serialize would never produce.
std::string RawWire(uint64_t id, const std::vector<WriteId>& deps,
                    const std::vector<uint64_t>& scopes = {}) {
  Serializer s;
  s.WriteVarint(id);
  std::vector<std::string> stores;
  std::vector<size_t> index_of(deps.size());
  for (size_t i = 0; i < deps.size(); ++i) {
    auto it = std::find(stores.begin(), stores.end(), deps[i].store);
    index_of[i] = static_cast<size_t>(it - stores.begin());
    if (it == stores.end()) {
      stores.push_back(deps[i].store);
    }
  }
  s.WriteVarint(stores.size());
  for (const auto& store : stores) {
    s.WriteString(store);
  }
  s.WriteVarint(deps.size());
  for (size_t i = 0; i < deps.size(); ++i) {
    s.WriteVarint(index_of[i]);
    s.WriteString(deps[i].key);
    s.WriteVarint(deps[i].version);
    s.WriteVarint(i < scopes.size() ? scopes[i] : deps[i].scope);
  }
  return s.Release();
}
}  // namespace

TEST(LineageTest, DeserializeRejectsOutOfOrderDeps) {
  auto result = Lineage::Deserialize(RawWire(1, {Id("s", "b", 1), Id("s", "a", 1)}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Out of order across stores, too.
  result = Lineage::Deserialize(RawWire(1, {Id("t", "k", 1), Id("s", "k", 1)}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, DeserializeRejectsDuplicateStoreKeyPairs) {
  // Exact duplicates and same-pair-different-version both violate the at most
  // one version per ⟨store, key⟩ invariant.
  auto result = Lineage::Deserialize(RawWire(1, {Id("s", "k", 1), Id("s", "k", 1)}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  result = Lineage::Deserialize(RawWire(1, {Id("s", "k", 1), Id("s", "k", 5)}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, DeserializeRejectsCountBeyondPayload) {
  // Claims 3 dependencies but carries 1.
  Serializer s;
  s.WriteVarint(1);  // id
  s.WriteVarint(1);  // store table: one entry
  s.WriteString("s");
  s.WriteVarint(3);  // dependency count (a lie)
  s.WriteVarint(0);  // store index
  s.WriteString("k");
  s.WriteVarint(1);                // version
  s.WriteVarint(kAllRegionsMask);  // scope
  auto result = Lineage::Deserialize(s.Release());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, DeserializeRejectsUnreferencedStoreTableEntries) {
  // A canonical table is built *from* the dependency runs, so an entry no
  // dependency references (or a table with zero dependencies) cannot have
  // come from our Serialize.
  Serializer s;
  s.WriteVarint(1);  // id
  s.WriteVarint(2);  // store table claims two stores...
  s.WriteString("a");
  s.WriteString("b");
  s.WriteVarint(1);  // ...but the single dependency only references the first
  s.WriteVarint(0);
  s.WriteString("k");
  s.WriteVarint(1);
  s.WriteVarint(kAllRegionsMask);
  auto result = Lineage::Deserialize(s.Release());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  Serializer empty;
  empty.WriteVarint(1);  // id
  empty.WriteVarint(1);  // one store, zero dependencies
  empty.WriteString("a");
  empty.WriteVarint(0);
  result = Lineage::Deserialize(empty.Release());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, SerializeInternsRepeatedStoreNames) {
  // The whole point of the v2 wire: a store name is paid once, not per dep.
  Lineage lineage(1);
  const std::string store(32, 's');
  for (int i = 0; i < 10; ++i) {
    lineage.Append(WriteId{store, "key" + std::to_string(i), 1});
  }
  // One interned copy of the 32-byte name plus ~8 bytes per dependency.
  EXPECT_LT(lineage.WireSize(), 33 + 3 + 10 * 10);
  auto restored = Lineage::Deserialize(lineage.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, lineage);
}

// --- locality scopes (DESIGN.md §13) ----------------------------------------

WriteId ScopedId(const std::string& store, const std::string& key, uint64_t version,
                 RegionMask scope) {
  return WriteId{store, key, version, scope};
}

TEST(LineageTest, SerializePreservesLocalityScopes) {
  Lineage lineage(3);
  lineage.Append(ScopedId("s", "narrow", 1, RegionMaskOf({Region::kUs})));
  lineage.Append(ScopedId("s", "wide", 2, RegionMaskOf({Region::kEu, Region::kSg})));
  lineage.Append(Id("t", "default", 1));  // all-ones
  auto restored = Lineage::Deserialize(lineage.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, lineage);
  // operator== ignores scope, so compare the masks explicitly.
  ASSERT_EQ(restored->Size(), 3u);
  EXPECT_EQ(restored->deps()[0].scope, RegionMaskOf({Region::kUs}));
  EXPECT_EQ(restored->deps()[1].scope, RegionMaskOf({Region::kEu, Region::kSg}));
  EXPECT_EQ(restored->deps()[2].scope, kAllRegionsMask);
}

TEST(LineageTest, DeserializeRejectsZeroScope) {
  // A zero scope claims "enforce nowhere" — such a dependency is pruned, never
  // serialized, so on the wire it marks corruption.
  auto result = Lineage::Deserialize(RawWire(1, {Id("s", "k", 1)}, {0}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, DeserializeRejectsScopeBeyondKnownRegions) {
  auto result = Lineage::Deserialize(
      RawWire(1, {Id("s", "k", 1)}, {static_cast<uint64_t>(kAllRegionsMask) + 1}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // A multi-byte varint mask is just as foreign.
  result = Lineage::Deserialize(RawWire(1, {Id("s", "k", 1)}, {1u << 20}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, DeserializeRejectsTruncatedScope) {
  // Cut the wire exactly at the final dependency's scope byte.
  const std::string wire = RawWire(1, {Id("s", "k", 1)});
  auto result = Lineage::Deserialize(std::string_view(wire).substr(0, wire.size() - 1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(LineageTest, AppendNormalizesZeroScopeToUnknown) {
  Lineage lineage;
  lineage.Append(ScopedId("s", "k", 1, 0));
  EXPECT_EQ(lineage.deps()[0].scope, kAllRegionsMask);
}

TEST(LineageTest, AppendNewerVersionAdoptsItsScope) {
  Lineage lineage;
  lineage.Append(ScopedId("s", "k", 1, RegionMaskOf({Region::kUs, Region::kEu})));
  // A newer write restarts from its store's scope, even a broader one.
  lineage.Append(ScopedId("s", "k", 2, RegionMaskOf({Region::kSg})));
  EXPECT_EQ(lineage.deps()[0].scope, RegionMaskOf({Region::kSg}));
  // An older re-append changes nothing.
  lineage.Append(ScopedId("s", "k", 1, kAllRegionsMask));
  EXPECT_EQ(lineage.deps()[0].version, 2u);
  EXPECT_EQ(lineage.deps()[0].scope, RegionMaskOf({Region::kSg}));
}

TEST(LineageTest, AppendEqualVersionIntersectsScopes) {
  Lineage lineage;
  lineage.Append(ScopedId("s", "k", 1, RegionMaskOf({Region::kUs, Region::kEu})));
  lineage.Append(ScopedId("s", "k", 1, RegionMaskOf({Region::kEu, Region::kSg})));
  EXPECT_EQ(lineage.deps()[0].scope, RegionMaskOf({Region::kEu}));
  // A disjoint claim would intersect to zero — Append is not a pruning point,
  // so the existing (broader) claim is kept instead.
  lineage.Append(ScopedId("s", "k", 1, RegionMaskOf({Region::kUs})));
  EXPECT_EQ(lineage.deps()[0].scope, RegionMaskOf({Region::kEu}));
}

TEST(LineageTest, TransferMergesScopes) {
  Lineage a;
  a.Append(ScopedId("s", "same", 1, RegionMaskOf({Region::kUs, Region::kEu})));
  a.Append(ScopedId("s", "stale", 1, kAllRegionsMask));
  Lineage b;
  b.Append(ScopedId("s", "same", 1, RegionMaskOf({Region::kEu, Region::kSg})));
  b.Append(ScopedId("s", "stale", 4, RegionMaskOf({Region::kSg})));
  a.Transfer(b);
  ASSERT_EQ(a.Size(), 2u);
  // Equal versions intersect; a version conflict keeps the winner's scope.
  EXPECT_EQ(a.deps()[0].scope, RegionMaskOf({Region::kEu}));
  EXPECT_EQ(a.deps()[1].version, 4u);
  EXPECT_EQ(a.deps()[1].scope, RegionMaskOf({Region::kSg}));
}

TEST(LineageTest, PruneNarrowsScopeAndDropsVisibleEverywhere) {
  VisibilityCache cache;
  auto vis = cache.Register("prune-s", {Region::kUs, Region::kEu});
  vis->NoteVisible(Region::kUs, "half", 1);
  vis->NoteVisible(Region::kUs, "done", 1);
  vis->NoteVisible(Region::kEu, "done", 1);

  Lineage lineage(9);
  lineage.Append(Id("prune-s", "half", 1));  // visible at US only
  lineage.Append(Id("prune-s", "done", 1));  // visible at both replicas
  lineage.Append(Id("prune-s", "cold", 1));  // visible nowhere yet
  lineage.Append(Id("unknown-store", "k", 1));
  EXPECT_EQ(lineage.PruneVisibleEverywhere(cache), 1u);
  ASSERT_EQ(lineage.Size(), 3u);
  // The store only replicates to {US, EU}, so scopes narrow to the footprint;
  // "half" additionally sheds the US bit it was proven visible at.
  EXPECT_EQ(lineage.deps()[0].key, "cold");
  EXPECT_EQ(lineage.deps()[0].scope, RegionMaskOf({Region::kUs, Region::kEu}));
  EXPECT_EQ(lineage.deps()[1].key, "half");
  EXPECT_EQ(lineage.deps()[1].scope, RegionMaskOf({Region::kEu}));
  // Dependencies on stores the cache does not know keep their full scope.
  EXPECT_EQ(lineage.deps()[2].store, "unknown-store");
  EXPECT_EQ(lineage.deps()[2].scope, kAllRegionsMask);
}

TEST(LineageTest, ToStringListsDeps) {
  Lineage lineage(5);
  lineage.Append(Id("s", "k", 1));
  const std::string text = lineage.ToString();
  EXPECT_NE(text.find("id=5"), std::string::npos);
  EXPECT_NE(text.find("s:k@v1"), std::string::npos);
}

// Property sweep: serialize∘deserialize is the identity for random lineages.
class LineageRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(LineageRoundTripTest, RandomRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    Lineage lineage(rng.NextUint64());
    const int deps = static_cast<int>(rng.NextBelow(40));
    for (int i = 0; i < deps; ++i) {
      lineage.Append(Id("store" + std::to_string(rng.NextBelow(6)),
                        "key" + std::to_string(rng.NextBelow(1000)), 1 + rng.NextBelow(100)));
    }
    auto restored = Lineage::Deserialize(lineage.Serialize());
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, lineage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineageRoundTripTest, ::testing::Range(1, 6));

// Property: transfer is associative-ish (set union semantics with max-version
// compaction) — (a ∪ b) ∪ c == a ∪ (b ∪ c).
TEST(LineageTest, TransferIsAssociative) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    auto random_lineage = [&rng] {
      Lineage lineage;
      const int deps = static_cast<int>(rng.NextBelow(10));
      for (int i = 0; i < deps; ++i) {
        lineage.Append(WriteId{"s" + std::to_string(rng.NextBelow(3)),
                               "k" + std::to_string(rng.NextBelow(5)), 1 + rng.NextBelow(9)});
      }
      return lineage;
    };
    const Lineage a = random_lineage();
    const Lineage b = random_lineage();
    const Lineage c = random_lineage();

    Lineage left = a;
    left.Transfer(b);
    left.Transfer(c);

    Lineage bc = b;
    bc.Transfer(c);
    Lineage right = a;
    right.Transfer(bc);

    EXPECT_EQ(left.deps(), right.deps());
  }
}

}  // namespace
}  // namespace antipode
