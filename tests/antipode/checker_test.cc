#include "src/antipode/checker.h"

#include <gtest/gtest.h>

#include "src/antipode/kv_shim.h"
#include "src/antipode/lineage_api.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class CheckerTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }

  ReplicatedStoreOptions SlowKv(const std::string& name) {
    auto options = KvStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = 1000000.0;
    return options;
  }
};

TEST_F(CheckerTest, ConsistentSiteReportsZero) {
  KvStore store(KvStore::DefaultOptions("chk1", kRegions));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  ConsistencyChecker checker(&registry);

  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  EXPECT_TRUE(checker.Check("origin-site", lineage, Region::kUs));
  auto report = checker.Report();
  EXPECT_EQ(report.at("origin-site").checks, 1u);
  EXPECT_EQ(report.at("origin-site").inconsistent, 0u);
  EXPECT_DOUBLE_EQ(report.at("origin-site").InconsistencyRate(), 0.0);
}

TEST_F(CheckerTest, InconsistentSiteAttributedToStore) {
  KvStore store(SlowKv("chk2"));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  ConsistencyChecker checker(&registry);

  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  EXPECT_FALSE(checker.Check("remote-site", lineage, Region::kEu));
  EXPECT_FALSE(checker.Check("remote-site", lineage, Region::kEu));
  auto report = checker.Report();
  EXPECT_EQ(report.at("remote-site").checks, 2u);
  EXPECT_EQ(report.at("remote-site").inconsistent, 2u);
  EXPECT_EQ(report.at("remote-site").unmet_by_store.at("chk2"), 2u);
}

TEST_F(CheckerTest, ChecksDoNotBlock) {
  KvStore store(SlowKv("chk3"));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  ConsistencyChecker checker(&registry);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  const TimePoint start = SystemClock::Instance().Now();
  checker.Check("site", lineage, Region::kEu);
  EXPECT_LT(SystemClock::Instance().Now() - start, Millis(100));
}

TEST_F(CheckerTest, UnresolvedStoresCounted) {
  ShimRegistry registry;
  ConsistencyChecker checker(&registry);
  Lineage lineage(1);
  lineage.Append(WriteId{"not-integrated", "k", 1});
  checker.Check("site", lineage, Region::kUs);
  EXPECT_EQ(checker.Report().at("site").unresolved, 1u);
}

TEST_F(CheckerTest, CheckCtxUsesCurrentLineage) {
  KvStore store(SlowKv("chk4"));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  ConsistencyChecker checker(&registry);
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  shim.WriteCtx(Region::kUs, "k", "v");
  EXPECT_FALSE(checker.CheckCtx("ctx-site", Region::kEu));
  EXPECT_TRUE(checker.CheckCtx("empty-ok", Region::kUs));
}

TEST_F(CheckerTest, CheckCtxWithoutContextIsConsistent) {
  ShimRegistry registry;
  ConsistencyChecker checker(&registry);
  EXPECT_TRUE(checker.CheckCtx("no-ctx", Region::kUs));
}

TEST_F(CheckerTest, SummaryRanksWorstSiteFirst) {
  KvStore slow(SlowKv("chk5"));
  KvShim shim(&slow);
  ShimRegistry registry;
  registry.Register(&shim);
  ConsistencyChecker checker(&registry);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  checker.Check("bad-site", lineage, Region::kEu);
  checker.Check("good-site", Lineage(2), Region::kEu);
  const std::string summary = checker.Summary();
  EXPECT_LT(summary.find("bad-site"), summary.find("good-site"));
  EXPECT_NE(summary.find("100.0% inconsistent"), std::string::npos);
}

TEST_F(CheckerTest, ResetClearsReport) {
  ShimRegistry registry;
  ConsistencyChecker checker(&registry);
  checker.Check("site", Lineage(1), Region::kUs);
  checker.Reset();
  EXPECT_TRUE(checker.Report().empty());
}

}  // namespace
}  // namespace antipode
