#include "src/antipode/session.h"

#include <gtest/gtest.h>

#include "src/antipode/kv_shim.h"
#include "src/antipode/lineage_api.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }

  static ReplicatedStoreOptions Kv(const std::string& name, double median_millis) {
    auto options = KvStore::DefaultOptions(name, kRegions);
    options.replication.median_millis = median_millis;
    options.replication.sigma = 0.05;
    return options;
  }
};

TEST_F(SessionTest, StartsEmpty) {
  Session session("alice");
  EXPECT_EQ(session.id(), "alice");
  EXPECT_EQ(session.NumDeps(), 0u);
  EXPECT_TRUE(session.Snapshot().Empty());
}

TEST_F(SessionTest, AbsorbAccumulatesAcrossRequests) {
  Session session("alice");
  Lineage first(1);
  first.Append(WriteId{"s", "a", 1});
  Lineage second(2);
  second.Append(WriteId{"s", "b", 1});
  session.Absorb(first);
  session.Absorb(second);
  EXPECT_EQ(session.NumDeps(), 2u);
}

TEST_F(SessionTest, AbsorbCtxTakesCurrentLineage) {
  Session session("alice");
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  LineageApi::Append(WriteId{"s", "k", 3});
  session.AbsorbCtx();
  EXPECT_TRUE(session.Snapshot().Contains(WriteId{"s", "k", 3}));
}

TEST_F(SessionTest, AttachInstallsIntoNewRequest) {
  Session session("alice");
  Lineage prior(1);
  prior.Append(WriteId{"s", "old", 2});
  session.Absorb(prior);

  ScopedContext scoped(RequestContext(2));
  LineageApi::Root();
  session.Attach();
  EXPECT_TRUE(LineageApi::Current()->Contains(WriteId{"s", "old", 2}));
}

TEST_F(SessionTest, GuardReadProvidesReadYourWrites) {
  KvStore store(Kv("sess1", 100.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Session session("alice");

  {
    ScopedContext scoped(RequestContext(1));
    LineageApi::Root();
    shim.WriteCtx(Region::kUs, "profile:alice", "new bio");
    session.AbsorbCtx();
  }

  EXPECT_FALSE(store.IsVisible(Region::kEu, "profile:alice", 1));
  ASSERT_TRUE(session.GuardRead(Region::kEu, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "profile:alice", 1));
  // The value was written through the shim, so read it back through it too
  // (the raw store holds the framed value+lineage encoding).
  auto read = shim.Read(Region::kEu, "profile:alice");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value, "new bio");
}

TEST_F(SessionTest, IsReadConsistentProbesWithoutBlocking) {
  KvStore store(Kv("sess2", 1000000.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Session session("alice");
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  session.Absorb(lineage);
  EXPECT_TRUE(session.IsReadConsistent(Region::kUs, &registry));
  EXPECT_FALSE(session.IsReadConsistent(Region::kEu, &registry));
}

TEST_F(SessionTest, CompactionKeepsSessionSmallOnRepeatedWrites) {
  Session session("alice");
  for (uint64_t v = 1; v <= 100; ++v) {
    Lineage lineage(v);
    lineage.Append(WriteId{"s", "linchpin", v});
    session.Absorb(lineage);
  }
  // 100 writes to the same key collapse to a single (highest-version) dep.
  EXPECT_EQ(session.NumDeps(), 1u);
  EXPECT_TRUE(session.Snapshot().Contains(WriteId{"s", "linchpin", 100}));
}

TEST_F(SessionTest, ClearResets) {
  Session session("alice");
  Lineage lineage(1);
  lineage.Append(WriteId{"s", "k", 1});
  session.Absorb(lineage);
  session.Clear();
  EXPECT_EQ(session.NumDeps(), 0u);
}

TEST_F(SessionTest, GuardReadTimesOutOnStall) {
  KvStore store(Kv("sess3", 5.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  Session session("alice");
  session.Absorb(shim.Write(Region::kUs, "k", "v", Lineage(1)));
  EXPECT_EQ(session
                .GuardRead(Region::kEu,
                           BarrierOptions{.wait = {.timeout = Millis(50)}, .registry = &registry})
                .code(),
            StatusCode::kDeadlineExceeded);
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
}

}  // namespace
}  // namespace antipode
