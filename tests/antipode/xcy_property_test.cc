// Property-style sweeps of the XCY invariants (§4.2):
//
//  I1  After Barrier(ℒ, r) returns OK, every dependency of ℒ with a
//      registered shim is visible at region r.
//  I2  Reads-from-lineage: a reader that observes a write also inherits the
//      writer's entire dependency set (so transitive enforcement works).
//  I3  Monotonic versions: a replica never regresses to an older version.
//  I4  Dry-run soundness: a dependency the dry run reports as met is indeed
//      readable locally.
//
// Each property is swept over replication delays and store fan-out with
// randomized workloads.

#include <gtest/gtest.h>

#include "src/antipode/antipode.h"
#include "src/common/random.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

struct XcyParam {
  double replication_median_millis;
  int num_stores;
  int writes_per_request;
};

class XcyPropertyTest : public ::testing::TestWithParam<XcyParam> {
 protected:
  void SetUp() override { TimeScale::Set(0.005); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_P(XcyPropertyTest, BarrierImpliesVisibility) {
  const XcyParam param = GetParam();
  static int generation = 0;
  const std::string tag = "xcy" + std::to_string(generation++);

  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<KvShim>> shims;
  ShimRegistry registry;
  for (int i = 0; i < param.num_stores; ++i) {
    auto options = KvStore::DefaultOptions(tag + "-s" + std::to_string(i), kRegions);
    options.replication.median_millis = param.replication_median_millis;
    options.replication.sigma = 0.4;
    stores.push_back(std::make_unique<KvStore>(std::move(options)));
    shims.push_back(std::make_unique<KvShim>(stores.back().get()));
    registry.Register(shims.back().get());
  }

  Rng rng(1234);
  for (int request = 0; request < 10; ++request) {
    ScopedContext scoped(RequestContext(static_cast<uint64_t>(request)));
    LineageApi::Root();
    for (int w = 0; w < param.writes_per_request; ++w) {
      const auto store_index = static_cast<size_t>(rng.NextBelow(
          static_cast<uint64_t>(param.num_stores)));
      shims[store_index]->WriteCtx(Region::kUs,
                                   "r" + std::to_string(request) + "w" + std::to_string(w),
                                   "value");
    }
    auto lineage = LineageApi::Current();
    ASSERT_TRUE(lineage.has_value());
    ASSERT_EQ(lineage->Size(), static_cast<size_t>(param.writes_per_request));

    // I1: barrier => every dependency visible at the barrier region.
    ASSERT_TRUE(Barrier(*lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
    for (const auto& dep : lineage->deps()) {
      Shim* shim = registry.Lookup(dep.store);
      ASSERT_NE(shim, nullptr);
      EXPECT_TRUE(shim->IsVisible(Region::kEu, dep)) << dep.ToString();
    }

    // I4: dry run must now agree.
    auto report = BarrierDryRun(*lineage, Region::kEu, &registry);
    EXPECT_TRUE(report.consistent);
  }
}

TEST_P(XcyPropertyTest, ReadsFromLineageInheritsDependencies) {
  const XcyParam param = GetParam();
  static int generation = 0;
  const std::string tag = "rfl" + std::to_string(generation++);

  auto options = KvStore::DefaultOptions(tag, kRegions);
  options.replication.median_millis = param.replication_median_millis;
  KvStore store(std::move(options));
  KvShim shim(&store);

  // Writer: a chain of writes, each carrying the lineage so far.
  Lineage writer(1);
  for (int w = 0; w < param.writes_per_request; ++w) {
    writer = shim.Write(Region::kUs, tag + "-k" + std::to_string(w), "v", std::move(writer));
  }
  const std::string last_key = tag + "-k" + std::to_string(param.writes_per_request - 1);

  // Reader at the origin (visible immediately): observing the last write
  // must surface every earlier write of the chain (I2).
  auto result = shim.Read(Region::kUs, last_key);
  ASSERT_TRUE(result.ok());
  for (int w = 0; w < param.writes_per_request; ++w) {
    EXPECT_TRUE(result->lineage.Contains(
        WriteId{tag, tag + "-k" + std::to_string(w), 1}))
        << w;
  }
}

TEST_P(XcyPropertyTest, ReplicaVersionsNeverRegress) {
  const XcyParam param = GetParam();
  static int generation = 0;
  const std::string tag = "mono" + std::to_string(generation++);

  auto options = KvStore::DefaultOptions(tag, kRegions);
  options.replication.median_millis = param.replication_median_millis;
  options.replication.sigma = 1.0;  // heavy reordering across versions
  KvStore store(std::move(options));

  constexpr int kVersions = 12;
  for (int i = 0; i < kVersions; ++i) {
    store.Set(Region::kUs, "hot", "v" + std::to_string(i));
  }
  // Observe the EU replica while replication delivers out-of-order applies:
  // its visible version must be non-decreasing (I3).
  uint64_t last_seen = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (last_seen < kVersions && std::chrono::steady_clock::now() < deadline) {
    auto entry = store.Get(Region::kEu, "hot");
    if (entry.has_value()) {
      EXPECT_GE(entry->version, last_seen);
      last_seen = std::max(last_seen, entry->version);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(last_seen, static_cast<uint64_t>(kVersions));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XcyPropertyTest,
    ::testing::Values(XcyParam{10.0, 1, 1}, XcyParam{10.0, 3, 6}, XcyParam{80.0, 2, 4},
                      XcyParam{80.0, 4, 10}, XcyParam{300.0, 3, 8}, XcyParam{0.1, 2, 5}));

// The ACL scenario of §5.1: without transfer, Bob can see the post although
// Alice blocked him first; with transfer, the block is enforced.
TEST(XcyTransferScenarioTest, AclTransferEstablishesCrossLineageOrder) {
  TimeScale::Set(0.005);
  auto acl_options = KvStore::DefaultOptions("acl-storage", kRegions);
  acl_options.replication.median_millis = 400.0;  // ACL replicates slowly
  auto post_options = KvStore::DefaultOptions("post-storage-acl", kRegions);
  post_options.replication.median_millis = 20.0;  // posts replicate fast
  KvStore acl(std::move(acl_options));
  KvStore posts(std::move(post_options));
  KvShim acl_shim(&acl);
  KvShim post_shim(&posts);
  ShimRegistry registry;
  registry.Register(&acl_shim);
  registry.Register(&post_shim);

  // Lineage 1: Alice blocks Bob.
  Lineage block_lineage(1);
  block_lineage = acl_shim.Write(Region::kUs, "acl:alice", "block:bob",
                                 std::move(block_lineage));

  // Lineage 2: Alice posts. Without transfer, the post's lineage does not
  // carry the ACL write.
  Lineage post_lineage_no_transfer(2);
  post_lineage_no_transfer =
      post_shim.Write(Region::kUs, "post:alice:1", "hello", std::move(post_lineage_no_transfer));
  ASSERT_TRUE(
      Barrier(post_lineage_no_transfer, Region::kEu, BarrierOptions{.registry = &registry})
          .ok());
  // Post is visible in EU but the ACL may not be: Bob would see the post.
  EXPECT_TRUE(posts.IsVisible(Region::kEu, "post:alice:1", 1));
  EXPECT_FALSE(acl.IsVisible(Region::kEu, "acl:alice", 1));

  // With transfer (§5.1): the developer copies ℒ_block into ℒ_post, and the
  // barrier now also waits for the ACL write.
  Lineage post_lineage_transfer(3);
  post_lineage_transfer.Transfer(block_lineage);
  post_lineage_transfer =
      post_shim.Write(Region::kUs, "post:alice:2", "hello again",
                      std::move(post_lineage_transfer));
  ASSERT_TRUE(Barrier(post_lineage_transfer, Region::kEu,
                      BarrierOptions{.registry = &registry})
                  .ok());
  EXPECT_TRUE(acl.IsVisible(Region::kEu, "acl:alice", 1));
  EXPECT_TRUE(posts.IsVisible(Region::kEu, "post:alice:2", 1));
  TimeScale::Set(1.0);
}

}  // namespace
}  // namespace antipode
