// Visibility cache: unit coverage of the watermark/per-key split, the barrier
// fast path (warm vs cold, BarrierGlobal and BarrierDryRun across 3 regions),
// batched waits, lineage pruning, and a TSan-labelled stress test racing
// cache population (applies) against barrier lookups.

#include "src/antipode/visibility_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/antipode/barrier.h"
#include "src/antipode/kv_shim.h"
#include "src/antipode/lineage_api.h"
#include "src/context/request_context.h"
#include "src/obs/metrics.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kThreeRegions = {Region::kUs, Region::kEu, Region::kSg};

ReplicatedStoreOptions SlowKv(const std::string& name, double median_millis,
                              const std::vector<Region>& regions = kThreeRegions) {
  auto options = KvStore::DefaultOptions(name, regions);
  options.replication.median_millis = median_millis;
  options.replication.sigma = 0.05;
  return options;
}

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Default().GetCounter(name)->value();
}

class VisibilityCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(VisibilityCacheTest, PerKeyHitAndMiss) {
  StoreVisibility vis("s", {Region::kUs, Region::kEu});
  EXPECT_FALSE(vis.IsVisible(Region::kUs, "k", 1));
  vis.NoteApply(Region::kUs, "k", 1, 1);
  EXPECT_TRUE(vis.IsVisible(Region::kUs, "k", 1));
  EXPECT_FALSE(vis.IsVisible(Region::kEu, "k", 1));  // not applied there yet
  EXPECT_FALSE(vis.IsVisible(Region::kUs, "k", 2));  // newer version unknown
  // A hit on version N covers every older version of the key.
  vis.NoteApply(Region::kUs, "k", 5, 2);
  EXPECT_TRUE(vis.IsVisible(Region::kUs, "k", 3));
}

TEST_F(VisibilityCacheTest, UntrackedRegionNeverHits) {
  StoreVisibility vis("s", {Region::kUs, Region::kEu});
  vis.NoteApply(Region::kUs, "k", 1, 1);
  EXPECT_FALSE(vis.IsVisible(Region::kSg, "k", 1));
}

TEST_F(VisibilityCacheTest, WatermarkAdvancesOnContiguousPrefix) {
  StoreVisibility vis("s", {Region::kUs});
  vis.NoteApply(Region::kUs, "a", 1, 1);
  EXPECT_EQ(vis.watermark(Region::kUs), 1u);
  // Out-of-order arrival: seq 3 parks until seq 2 fills the gap.
  vis.NoteApply(Region::kUs, "c", 1, 3);
  EXPECT_EQ(vis.watermark(Region::kUs), 1u);
  vis.NoteApply(Region::kUs, "b", 1, 2);
  EXPECT_EQ(vis.watermark(Region::kUs), 3u);
  // Duplicate notifications do not double-advance.
  vis.NoteApply(Region::kUs, "b", 1, 2);
  EXPECT_EQ(vis.watermark(Region::kUs), 3u);
}

TEST_F(VisibilityCacheTest, WatermarkCoversOldWritesOfAKey) {
  StoreVisibility vis("s", {Region::kUs, Region::kEu});
  // Key written twice at US (seqs 1, 2); EU has only seen the newer apply.
  vis.NoteApply(Region::kUs, "k", 1, 1);
  vis.NoteApply(Region::kUs, "k", 2, 2);
  vis.NoteApply(Region::kEu, "k", 2, 2);
  // EU's per-key fact covers version 1 directly (visible[eu] = 2 >= 1).
  EXPECT_TRUE(vis.IsVisible(Region::kEu, "k", 1));
  // Watermark coverage: a *different* key's old write, known only through the
  // latest-write seq sitting at or below the watermark.
  vis.NoteApply(Region::kUs, "x", 1, 3);
  vis.NoteApply(Region::kEu, "x", 1, 3);
  EXPECT_EQ(vis.watermark(Region::kEu), 0u);  // seq 1 never applied at EU...
  vis.NoteApply(Region::kEu, "k", 1, 1);      // ...until the stale replay lands
  EXPECT_EQ(vis.watermark(Region::kEu), 3u);
  EXPECT_TRUE(vis.IsVisible(Region::kEu, "x", 1));
}

TEST_F(VisibilityCacheTest, NoteVisibleFeedsPerKeyOnly) {
  StoreVisibility vis("s", {Region::kUs});
  vis.NoteVisible(Region::kUs, "k", 4);
  EXPECT_TRUE(vis.IsVisible(Region::kUs, "k", 4));
  EXPECT_TRUE(vis.IsVisible(Region::kUs, "k", 2));
  EXPECT_EQ(vis.watermark(Region::kUs), 0u);  // seq unknown: watermark untouched
}

TEST_F(VisibilityCacheTest, VisibleEverywhereRequiresAllRegions) {
  StoreVisibility vis("s", {Region::kUs, Region::kEu, Region::kSg});
  vis.NoteApply(Region::kUs, "k", 1, 1);
  vis.NoteApply(Region::kEu, "k", 1, 1);
  EXPECT_FALSE(vis.IsVisibleEverywhere("k", 1));
  vis.NoteApply(Region::kSg, "k", 1, 1);
  EXPECT_TRUE(vis.IsVisibleEverywhere("k", 1));
  EXPECT_EQ(vis.MinWatermark(), 1u);
}

TEST_F(VisibilityCacheTest, ReRegisterStartsCold) {
  VisibilityCache cache;
  auto first = cache.Register("s", {Region::kUs});
  first->NoteApply(Region::kUs, "k", 1, 1);
  EXPECT_TRUE(cache.Find("s")->IsVisible(Region::kUs, "k", 1));
  // A re-created same-named store must not inherit the old facts.
  auto second = cache.Register("s", {Region::kUs});
  EXPECT_FALSE(cache.Find("s")->IsVisible(Region::kUs, "k", 1));
  // Unregistering the *stale* handle must not evict the live one.
  cache.Unregister(first);
  EXPECT_EQ(cache.Find("s"), second);
  cache.Unregister(second);
  EXPECT_EQ(cache.Find("s"), nullptr);
}

TEST_F(VisibilityCacheTest, StorePopulatesCacheOnApply) {
  VisibilityCache cache;
  auto options = SlowKv("vc-populate", 30.0);
  options.visibility_cache = &cache;
  KvStore store(options);
  auto vis = store.visibility();
  ASSERT_NE(vis, nullptr);
  store.Set(Region::kUs, "k", "v");
  EXPECT_TRUE(vis->IsVisible(Region::kUs, "k", 1));  // origin apply is synchronous
  store.DrainReplication();
  EXPECT_TRUE(vis->IsVisible(Region::kEu, "k", 1));
  EXPECT_TRUE(vis->IsVisible(Region::kSg, "k", 1));
  EXPECT_TRUE(vis->IsVisibleEverywhere("k", 1));
  EXPECT_EQ(vis->MinWatermark(), 1u);
}

TEST_F(VisibilityCacheTest, PausedReplicationDoesNotPopulate) {
  VisibilityCache cache;
  auto options = SlowKv("vc-pause", 10.0, {Region::kUs, Region::kEu});
  options.visibility_cache = &cache;
  KvStore store(options);
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  store.Set(Region::kUs, "k", "v");
  store.DrainReplication();  // shipment fired, but the entry is buffered
  auto vis = store.visibility();
  EXPECT_FALSE(vis->IsVisible(Region::kEu, "k", 1));
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
  EXPECT_TRUE(vis->IsVisible(Region::kEu, "k", 1));
  EXPECT_EQ(vis->watermark(Region::kEu), 1u);
}

// --- Barrier fast path -----------------------------------------------------

TEST_F(VisibilityCacheTest, BarrierCacheWarmPathIsZeroWait) {
  KvStore store(SlowKv("vc-warm", 30.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  store.DrainReplication();  // cache now warm at every region

  const uint64_t zero_wait_before = CounterValue("barrier.zero_wait");
  const uint64_t hits_before = CounterValue("barrier.cache_hit");
  const uint64_t waiters_before = store.TotalWakeups().waiters_notified;
  EXPECT_TRUE(
      BarrierGlobal(lineage, kThreeRegions, BarrierOptions{.registry = &registry}).ok());
  EXPECT_EQ(CounterValue("barrier.zero_wait"), zero_wait_before + 1);
  EXPECT_EQ(CounterValue("barrier.cache_hit"), hits_before + 3);  // 3 regions x 1 dep
  // Zero registry traffic: no waiter was registered or woken.
  EXPECT_EQ(store.TotalWakeups().waiters_notified, waiters_before);
  EXPECT_EQ(store.visibility()->KeyCount(), 1u);
}

TEST_F(VisibilityCacheTest, BarrierColdPathStillBlocksUntilVisible) {
  KvStore store(SlowKv("vc-cold", 80.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  const uint64_t misses_before = CounterValue("barrier.cache_miss");
  // Not yet replicated: the EU/SG probes miss and fall back to real waits.
  EXPECT_TRUE(
      BarrierGlobal(lineage, kThreeRegions, BarrierOptions{.registry = &registry}).ok());
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
  EXPECT_TRUE(store.IsVisible(Region::kSg, "k", 1));
  EXPECT_GT(CounterValue("barrier.cache_miss"), misses_before);
  // The completed waits fed the cache: the same barrier again is free.
  const uint64_t zero_wait_before = CounterValue("barrier.zero_wait");
  EXPECT_TRUE(
      BarrierGlobal(lineage, kThreeRegions, BarrierOptions{.registry = &registry}).ok());
  EXPECT_EQ(CounterValue("barrier.zero_wait"), zero_wait_before + 1);
}

TEST_F(VisibilityCacheTest, BarrierCacheOffMatchesBaselineSemantics) {
  KvStore store(SlowKv("vc-off", 40.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  store.DrainReplication();
  const uint64_t zero_wait_before = CounterValue("barrier.zero_wait");
  EXPECT_TRUE(BarrierGlobal(lineage, kThreeRegions,
                            BarrierOptions{.registry = &registry, .use_cache = false})
                  .ok());
  EXPECT_EQ(CounterValue("barrier.zero_wait"), zero_wait_before);  // cache bypassed
}

TEST_F(VisibilityCacheTest, SequentialBarrierUsesCacheToo) {
  KvStore store(SlowKv("vc-seq", 30.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  store.DrainReplication();
  const uint64_t zero_wait_before = CounterValue("barrier.zero_wait");
  EXPECT_TRUE(Barrier(lineage, Region::kEu,
                      BarrierOptions{.registry = &registry,
                                     .wait_mode = BarrierWaitMode::kSequential})
                  .ok());
  EXPECT_EQ(CounterValue("barrier.zero_wait"), zero_wait_before + 1);
}

TEST_F(VisibilityCacheTest, DryRunWarmVsCold) {
  KvStore store(SlowKv("vc-dry", 60.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));

  // Cold: the remote probes report the dependency unmet.
  BarrierDryRunResult cold = BarrierDryRun(lineage, Region::kEu, &registry);
  EXPECT_FALSE(cold.consistent);
  ASSERT_EQ(cold.unmet.size(), 1u);
  EXPECT_EQ(cold.unmet[0].key, "k");

  store.DrainReplication();
  // Warm via the cache (applies populated it): consistent at all 3 regions.
  for (Region region : kThreeRegions) {
    BarrierDryRunResult warm = BarrierDryRun(lineage, region, &registry);
    EXPECT_TRUE(warm.consistent) << RegionName(region);
  }
  // And with the cache off, the underlying IsVisible agrees — the cache never
  // changes a dry-run verdict, only its cost.
  for (Region region : kThreeRegions) {
    BarrierDryRunResult warm = BarrierDryRun(lineage, region, &registry, /*use_cache=*/false);
    EXPECT_TRUE(warm.consistent) << RegionName(region);
  }
}

TEST_F(VisibilityCacheTest, BatchedWaitCoversManyDeps) {
  KvStore store(SlowKv("vc-batch", 50.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage(1);
  for (int i = 0; i < 16; ++i) {
    lineage = shim.Write(Region::kUs, "k" + std::to_string(i), "v", std::move(lineage));
  }
  EXPECT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(store.IsVisible(Region::kEu, "k" + std::to_string(i), 1));
  }
}

TEST_F(VisibilityCacheTest, BatchedWaitDeadlineExceeded) {
  KvStore store(SlowKv("vc-batch-dl", 1000000.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  Lineage lineage = shim.Write(Region::kUs, "a", "v", Lineage(1));
  lineage = shim.Write(Region::kUs, "b", "v", std::move(lineage));
  Status status = Barrier(lineage, Region::kEu,
                          BarrierOptions{.wait = {.timeout = Millis(30)}, .registry = &registry});
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  store.DrainReplication();
}

TEST_F(VisibilityCacheTest, WaitVisibleBatchAsyncEmptyAndVisible) {
  KvStore store(SlowKv("vc-batch-sync", 10.0, {Region::kUs, Region::kEu}));
  store.Set(Region::kUs, "k", "v");
  // Empty batch: completes Ok inline.
  std::atomic<int> fired{0};
  Status got = Status::Internal("unset");
  store.WaitVisibleBatchAsync(Region::kUs, {}, TimePoint::max(), [&](Status s) {
    got = std::move(s);
    fired.fetch_add(1);
  });
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(got.ok());
  // All-visible batch: completes Ok synchronously, no waiter registered.
  std::vector<KeyVersion> items = {{"k", 1}};
  store.WaitVisibleBatchAsync(Region::kUs, items, TimePoint::max(),
                              [&](Status s) {
                                got = std::move(s);
                                fired.fetch_add(1);
                              });
  EXPECT_EQ(fired.load(), 2);
  EXPECT_TRUE(got.ok());
  store.DrainReplication();
}

// --- Lineage pruning -------------------------------------------------------

TEST_F(VisibilityCacheTest, PruneDropsOnlyVisibleEverywhereDeps) {
  VisibilityCache cache;
  auto fast_options = SlowKv("vc-prune-fast", 5.0);
  fast_options.visibility_cache = &cache;
  KvStore fast(fast_options);
  auto slow_options = SlowKv("vc-prune-slow", 100000.0);
  slow_options.visibility_cache = &cache;
  KvStore slow(slow_options);

  Lineage lineage(1);
  fast.Set(Region::kUs, "done", "v");
  slow.Set(Region::kUs, "pending", "v");
  lineage.Append(WriteId{"vc-prune-fast", "done", 1});
  lineage.Append(WriteId{"vc-prune-slow", "pending", 1});
  lineage.Append(WriteId{"unknown-store", "k", 1});
  fast.DrainReplication();

  const size_t wire_before = lineage.WireSize();
  EXPECT_EQ(lineage.PruneVisibleEverywhere(cache), 1u);
  EXPECT_EQ(lineage.Size(), 2u);
  EXPECT_FALSE(lineage.Contains(WriteId{"vc-prune-fast", "done", 1}));
  // Still-replicating and unknown-store deps survive.
  EXPECT_TRUE(lineage.Contains(WriteId{"vc-prune-slow", "pending", 1}));
  EXPECT_TRUE(lineage.Contains(WriteId{"unknown-store", "k", 1}));
  EXPECT_LT(lineage.WireSize(), wire_before);
  // Idempotent: nothing more to prune.
  EXPECT_EQ(lineage.PruneVisibleEverywhere(cache), 0u);
}

TEST_F(VisibilityCacheTest, PruneOnInstallShedsBaggage) {
  KvStore store(SlowKv("vc-prune-install", 5.0));
  KvShim shim(&store);
  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  shim.WriteCtx(Region::kUs, "k", "v");
  store.DrainReplication();

  const bool was = LineageApi::SetPruneOnInstall(true);
  LineageApi::Append(WriteId{"some-other-store", "x", 1});  // triggers Install
  LineageApi::SetPruneOnInstall(was);

  auto lineage = LineageApi::Current();
  ASSERT_TRUE(lineage.has_value());
  EXPECT_FALSE(lineage->Contains(WriteId{"vc-prune-install", "k", 1}));  // pruned
  EXPECT_TRUE(lineage->Contains(WriteId{"some-other-store", "x", 1}));
}

// --- Stress: cache population races barrier lookups (run under TSan) -------

TEST_F(VisibilityCacheTest, CacheStressPopulationRacesLookups) {
  KvStore store(SlowKv("vc-stress", 3.0));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  constexpr int kWriters = 4;
  constexpr int kWritesPerWriter = 40;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> barrier_failures{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kWritesPerWriter; ++i) {
        // Reused keys: versions bump, so lookups race entry updates, and the
        // seq tracker sees heavily out-of-order applies across regions.
        Lineage lineage(static_cast<uint64_t>(w * kWritesPerWriter + i + 1));
        lineage = shim.Write(Region::kUs, "k" + std::to_string(w % 2) + std::to_string(i % 8),
                             "v", std::move(lineage));
        Status status =
            BarrierGlobal(lineage, kThreeRegions,
                          BarrierOptions{.wait = {.timeout = Millis(60000)}, .registry = &registry});
        if (!status.ok()) {
          barrier_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Reader threads hammer cache lookups and dry-runs while applies populate.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto vis = store.visibility();
      Lineage probe(1);
      probe.Append(WriteId{"vc-stress", "k00", 1});
      while (!stop.load(std::memory_order_acquire)) {
        vis->IsVisible(Region::kEu, "k11", 1);
        vis->IsVisibleEverywhere("k00", 1);
        vis->MinWatermark();
        BarrierDryRun(probe, Region::kSg, &registry);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  store.DrainReplication();
  EXPECT_EQ(barrier_failures.load(), 0u);

  // After the dust settles every write is visible everywhere, so the final
  // watermark equals the total number of writes at every region.
  auto vis = store.visibility();
  const uint64_t total = kWriters * kWritesPerWriter;
  for (Region region : kThreeRegions) {
    EXPECT_EQ(vis->watermark(region), total) << RegionName(region);
  }
}

}  // namespace
}  // namespace antipode
