#include "src/antipode/framing.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace antipode {
namespace {

TEST(FramingTest, RoundTripValueAndLineage) {
  Lineage lineage(3);
  lineage.Append(WriteId{"s", "k", 7});
  FramedValue out = UnframeValue(FrameValue(lineage, "payload"));
  EXPECT_EQ(out.value, "payload");
  EXPECT_EQ(out.lineage, lineage);
}

TEST(FramingTest, EmptyValue) {
  Lineage lineage(1);
  FramedValue out = UnframeValue(FrameValue(lineage, ""));
  EXPECT_EQ(out.value, "");
  EXPECT_EQ(out.lineage.id(), 1u);
}

TEST(FramingTest, BinaryValueWithNulls) {
  const std::string binary("\x00\x01\x7F\xFFstuff", 9);
  FramedValue out = UnframeValue(FrameValue(Lineage(1), binary));
  EXPECT_EQ(out.value, binary);
}

TEST(FramingTest, UnframedRawBytesPassThrough) {
  // Data written by a non-instrumented service (incremental deployment):
  // reads back verbatim with an empty lineage.
  FramedValue out = UnframeValue("plain old value");
  EXPECT_EQ(out.value, "plain old value");
  EXPECT_TRUE(out.lineage.Empty());
  EXPECT_EQ(out.lineage.id(), 0u);
}

TEST(FramingTest, EmptyInputPassesThrough) {
  FramedValue out = UnframeValue("");
  EXPECT_EQ(out.value, "");
  EXPECT_TRUE(out.lineage.Empty());
}

TEST(FramingTest, FrameOverheadIsLineageSized) {
  Lineage lineage(1);
  lineage.Append(WriteId{"mysql", "posts/123", 42});
  const std::string value(1000, 'v');
  const std::string framed = FrameValue(lineage, value);
  // Overhead = magic + length prefix + serialized lineage; tens of bytes.
  EXPECT_GT(framed.size(), value.size());
  EXPECT_LT(framed.size(), value.size() + 100);
}

TEST(FramingTest, RandomRoundTripProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Lineage lineage(rng.NextUint64());
    const int deps = static_cast<int>(rng.NextBelow(20));
    for (int i = 0; i < deps; ++i) {
      lineage.Append(WriteId{"s" + std::to_string(rng.NextBelow(4)),
                             "k" + std::to_string(rng.NextBelow(100)), 1 + rng.NextBelow(50)});
    }
    std::string value;
    const size_t len = rng.NextBelow(500);
    for (size_t i = 0; i < len; ++i) {
      value.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    FramedValue out = UnframeValue(FrameValue(lineage, value));
    EXPECT_EQ(out.value, value);
    EXPECT_EQ(out.lineage, lineage);
  }
}

}  // namespace
}  // namespace antipode
