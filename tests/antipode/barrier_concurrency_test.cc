// Concurrency stress for the parallel barrier path: writers and barrier
// threads racing across several stores, Pause/Resume races, timeout versus
// visibility races on the waiter registry's fired-claim protocol, and
// BarrierAsync cancellation by deadline.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/antipode/antipode.h"
#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class BarrierConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.005); }
  void TearDown() override { TimeScale::Set(1.0); }
};

struct Fixture {
  std::vector<std::unique_ptr<KvStore>> stores;
  std::vector<std::unique_ptr<KvShim>> shims;
  ShimRegistry registry;

  explicit Fixture(int num_stores, double base_median = 20.0) {
    for (int i = 0; i < num_stores; ++i) {
      auto options = KvStore::DefaultOptions("bct" + std::to_string(i), kRegions);
      options.replication.median_millis = base_median * (1 + i);
      options.replication.sigma = 0.4;
      stores.push_back(std::make_unique<KvStore>(std::move(options)));
      shims.push_back(std::make_unique<KvShim>(stores.back().get()));
      registry.Register(shims.back().get());
    }
  }
};

// Many writer threads and barrier threads hammering four stores at once; each
// barrier spans a write in every store, so every barrier exercises the
// concurrent fan-out and per-key waiter registration.
TEST_F(BarrierConcurrencyTest, WritersAndBarriersAcrossStores) {
  Fixture fx(4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        LineageApi::Root();
        const std::string key =
            "k" + std::to_string(t) + "-" + std::to_string(rng.NextBelow(8));
        for (auto& shim : fx.shims) {
          shim->WriteCtx(Region::kUs, key, "v" + std::to_string(i));
        }
        Status status = BarrierCtx(Region::kEu, BarrierOptions{.registry = &fx.registry});
        if (!status.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (auto& shim : fx.shims) {
          if (!shim->Read(Region::kEu, key).ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

// Pause/Resume racing with barriers: a paused replica makes waits hang until
// Resume releases the backlog; no barrier may conclude while its dependency
// is still invisible, and all must conclude after Resume.
TEST_F(BarrierConcurrencyTest, PauseResumeRaces) {
  Fixture fx(3, 5.0);
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    Rng rng(99);
    while (!stop.load()) {
      auto& store = *fx.stores[rng.NextBelow(fx.stores.size())];
      store.fault_injector()->PauseStore(store.name(), Region::kEu);
      SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(5.0));
      store.fault_injector()->ResumeStore(store.name(), Region::kEu);
      SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(5.0));
    }
  });
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        LineageApi::Root();
        const std::string key = "p" + std::to_string(t) + "-" + std::to_string(i);
        for (auto& shim : fx.shims) {
          shim->WriteCtx(Region::kUs, key, "v");
        }
        if (!BarrierCtx(Region::kEu, BarrierOptions{.registry = &fx.registry}).ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (auto& shim : fx.shims) {
          if (!shim->Read(Region::kEu, key).ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  stop = true;
  toggler.join();
  for (auto& store : fx.stores) {
    store->fault_injector()->ResumeStore(store->name(), Region::kEu);
    store->DrainReplication();
  }
  EXPECT_EQ(failures.load(), 0);
}

// Timeout racing visibility: barriers run with a deadline near the median
// replication lag, so the waiter's deadline timer and the apply path race to
// claim the waiter. Either outcome is legal — Ok with the write visible, or
// DeadlineExceeded — but never a wrong success or a hang.
TEST_F(BarrierConcurrencyTest, TimeoutVersusVisibilityRaces) {
  Fixture fx(3, 10.0);
  std::atomic<int> ok_count{0};
  std::atomic<int> timeout_count{0};
  std::atomic<int> wrong{0};
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        RequestContext context;
        ScopedContext scoped(std::move(context));
        LineageApi::Root();
        const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        for (auto& shim : fx.shims) {
          shim->WriteCtx(Region::kUs, key, "v");
        }
        Status status = BarrierCtx(
            Region::kEu, BarrierOptions{.wait = {.timeout = TimeScale::FromModelMillis(20.0)},
                                        .registry = &fx.registry});
        if (status.ok()) {
          ok_count.fetch_add(1);
          // Success must mean genuinely visible everywhere.
          for (auto& shim : fx.shims) {
            if (!shim->Read(Region::kEu, key).ok()) {
              wrong.fetch_add(1);
            }
          }
        } else if (status.code() == StatusCode::kDeadlineExceeded) {
          timeout_count.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (auto& store : fx.stores) {
    store->DrainReplication();
  }
  EXPECT_EQ(wrong.load(), 0);
  // The deadline sits inside the lag distribution, so both outcomes occur.
  EXPECT_GT(ok_count.load() + timeout_count.load(), 0);
}

// BarrierAsync with a deadline that cannot be met (replication paused): the
// callback must still fire — cancelled by the deadline — and firing must be
// exactly once even when Resume floods applies right as deadlines expire.
TEST_F(BarrierConcurrencyTest, AsyncCancellationByDeadline) {
  Fixture fx(3, 5.0);
  for (auto& store : fx.stores) {
    store->fault_injector()->PauseStore(store->name(), Region::kEu);
  }
  ThreadPool executor(4, "barrier-cb");

  constexpr int kBarriers = 40;
  std::mutex mu;
  std::condition_variable cv;
  int completed = 0;
  std::vector<std::atomic<int>> fire_counts(kBarriers);
  std::vector<Status> results(kBarriers);

  for (int b = 0; b < kBarriers; ++b) {
    Lineage lineage(static_cast<uint64_t>(b) + 1);
    {
      RequestContext context;
      ScopedContext scoped(std::move(context));
      LineageApi::Root();
      for (auto& shim : fx.shims) {
        shim->WriteCtx(Region::kUs, "a" + std::to_string(b), "v");
      }
      lineage = *LineageApi::Current();
    }
    BarrierAsync(
        std::move(lineage), Region::kEu, &executor,
        [&, b](Status status) {
          fire_counts[static_cast<size_t>(b)].fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          results[static_cast<size_t>(b)] = std::move(status);
          ++completed;
          cv.notify_one();
        },
        BarrierOptions{.wait = {.timeout = TimeScale::FromModelMillis(15.0)}, .registry = &fx.registry});
  }
  // Resume mid-flight so applies race the expiring deadline timers.
  SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(10.0));
  for (auto& store : fx.stores) {
    store->fault_injector()->ResumeStore(store->name(), Region::kEu);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return completed == kBarriers; }));
  }
  for (auto& store : fx.stores) {
    store->DrainReplication();
  }
  int timeouts = 0;
  for (int b = 0; b < kBarriers; ++b) {
    EXPECT_EQ(fire_counts[static_cast<size_t>(b)].load(), 1) << b;
    const Status& status = results[static_cast<size_t>(b)];
    EXPECT_TRUE(status.ok() || status.code() == StatusCode::kDeadlineExceeded)
        << status.ToString();
    if (!status.ok()) {
      ++timeouts;
    }
  }
  // With replication paused past most deadlines, at least some must cancel.
  EXPECT_GT(timeouts, 0);
}

// The whole point of the registry rework: applies wake only waiters of the
// written key, not every waiter in the store.
TEST_F(BarrierConcurrencyTest, AppliesWakeOnlyMatchingWaiters) {
  auto options = KvStore::DefaultOptions("bct-wake", kRegions);
  options.replication.median_millis = 40.0;
  options.replication.sigma = 0.1;
  KvStore store(std::move(options));
  KvShim shim(&store);

  // Park many waiters on a key that will never be written.
  constexpr int kParked = 32;
  std::atomic<int> parked_fired{0};
  for (int i = 0; i < kParked; ++i) {
    store.WaitVisibleAsync(Region::kEu, "cold", 1,
                           SystemClock::Instance().Now() + std::chrono::seconds(20),
                           [&](Status) { parked_fired.fetch_add(1); });
  }
  // Write a burst of hot keys and barrier on them.
  Lineage lineage(1);
  for (int i = 0; i < 50; ++i) {
    lineage = shim.Write(Region::kUs, "hot" + std::to_string(i), "v", std::move(lineage));
  }
  ShimRegistry registry;
  registry.Register(&shim);
  ASSERT_TRUE(Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
  store.DrainReplication();

  const WakeupStats stats = store.TotalWakeups();
  ASSERT_GT(stats.applies, 0u);
  // Per-key notification: each apply woke at most the waiters of its own key,
  // so the average is O(1) even with 32 cold waiters parked. The legacy
  // notify_all figure counts every resident waiter per apply.
  EXPECT_LT(stats.waiters_notified, stats.applies * 2);
  EXPECT_GT(stats.notify_all_wakeups, stats.waiters_notified);
  EXPECT_EQ(parked_fired.load(), 0);
  // Release the parked waiters so their callbacks can't outlive the test.
  store.Set(Region::kUs, "cold", "v");
  store.DrainReplication();
  while (parked_fired.load() < kParked) {
    std::this_thread::yield();
  }
}

}  // namespace
}  // namespace antipode
