#include "src/store/value.h"

#include <gtest/gtest.h>

namespace antipode {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(static_cast<int64_t>(5)).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value(true).is_bool());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value("abc").as_string(), "abc");
  EXPECT_EQ(Value(static_cast<int64_t>(-7)).as_int(), -7);
  EXPECT_DOUBLE_EQ(Value(3.14).as_double(), 3.14);
  EXPECT_TRUE(Value(true).as_bool());
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_FALSE(Value("x") == Value("y"));
  EXPECT_FALSE(Value(static_cast<int64_t>(1)) == Value(1.0));  // different types
}

TEST(ValueTest, SerializeRoundTripEachType) {
  for (const Value& value : {Value("text"), Value(static_cast<int64_t>(-42)), Value(6.022e23),
                             Value(false), Value(std::string(300, 'z'))}) {
    Serializer s;
    value.SerializeTo(s);
    Deserializer d(s.data());
    auto restored = Value::DeserializeFrom(d);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, value);
  }
}

TEST(ValueTest, ByteSizeScalesWithStrings) {
  EXPECT_GT(Value(std::string(100, 'a')).ByteSize(), Value("a").ByteSize());
  EXPECT_EQ(Value(static_cast<int64_t>(1)).ByteSize(), 9u);
}

TEST(DocumentTest, SetGetEraseHas) {
  Document doc;
  EXPECT_FALSE(doc.Has("f"));
  doc.Set("f", Value("v"));
  EXPECT_TRUE(doc.Has("f"));
  EXPECT_EQ(doc.Get("f"), Value("v"));
  doc.Erase("f");
  EXPECT_FALSE(doc.Has("f"));
  EXPECT_EQ(doc.Get("f"), std::nullopt);
}

TEST(DocumentTest, InitializerList) {
  Document doc{{"a", Value(static_cast<int64_t>(1))}, {"b", Value("two")}};
  EXPECT_EQ(doc.FieldCount(), 2u);
  EXPECT_EQ(doc.Get("b"), Value("two"));
}

TEST(DocumentTest, SerializeRoundTrip) {
  Document doc{{"name", Value("alice")},
               {"age", Value(static_cast<int64_t>(30))},
               {"score", Value(0.99)},
               {"active", Value(true)}};
  auto restored = Document::Deserialize(doc.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, doc);
}

TEST(DocumentTest, EmptyDocumentRoundTrip) {
  Document doc;
  auto restored = Document::Deserialize(doc.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->FieldCount(), 0u);
}

TEST(DocumentTest, DeserializeGarbageFails) {
  auto restored = Document::Deserialize("\xFF\xFF\xFF garbage");
  EXPECT_FALSE(restored.ok());
}

TEST(DocumentTest, ByteSizeGrowsWithFields) {
  Document small{{"a", Value("1")}};
  Document big{{"a", Value("1")}, {"b", Value(std::string(500, 'x'))}};
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 400);
}

}  // namespace
}  // namespace antipode
