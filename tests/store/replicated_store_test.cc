#include "src/store/replicated_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace antipode {
namespace {

ReplicatedStoreOptions FastOptions(std::string name, double median_millis = 20.0) {
  ReplicatedStoreOptions options;
  options.name = std::move(name);
  options.regions = {Region::kUs, Region::kEu};
  options.replication.median_millis = median_millis;
  options.replication.sigma = 0.05;
  return options;
}

class ReplicatedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.05); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(ReplicatedStoreTest, WriteIsImmediatelyVisibleAtOrigin) {
  ReplicatedStore store(FastOptions("rs1"));
  const uint64_t version = store.Put(Region::kUs, "k", "v");
  EXPECT_EQ(version, 1u);
  auto entry = store.Get(Region::kUs, "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bytes, "v");
  EXPECT_EQ(entry->version, 1u);
  EXPECT_EQ(entry->origin, Region::kUs);
}

TEST_F(ReplicatedStoreTest, RemoteReplicaLagsThenConverges) {
  ReplicatedStore store(FastOptions("rs2", 100.0));
  store.Put(Region::kUs, "k", "v");
  EXPECT_FALSE(store.Get(Region::kEu, "k").has_value());
  EXPECT_TRUE(store.WaitVisible(Region::kEu, "k", 1, std::chrono::seconds(5)).ok());
  auto entry = store.Get(Region::kEu, "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bytes, "v");
}

TEST_F(ReplicatedStoreTest, VersionsAreMonotonicPerKey) {
  ReplicatedStore store(FastOptions("rs3"));
  EXPECT_EQ(store.Put(Region::kUs, "a", "1"), 1u);
  EXPECT_EQ(store.Put(Region::kUs, "a", "2"), 2u);
  EXPECT_EQ(store.Put(Region::kUs, "b", "1"), 1u);
  EXPECT_EQ(store.Put(Region::kEu, "a", "3"), 3u);
}

TEST_F(ReplicatedStoreTest, IsVisibleChecksWatermark) {
  ReplicatedStore store(FastOptions("rs4", 200.0));
  store.Put(Region::kUs, "k", "v");
  EXPECT_TRUE(store.IsVisible(Region::kUs, "k", 1));
  EXPECT_FALSE(store.IsVisible(Region::kEu, "k", 1));
  EXPECT_FALSE(store.IsVisible(Region::kUs, "k", 2));
}

TEST_F(ReplicatedStoreTest, NewerVersionSupersedesWait) {
  ReplicatedStore store(FastOptions("rs5", 30.0));
  store.Put(Region::kUs, "k", "v1");
  store.Put(Region::kUs, "k", "v2");
  // Waiting for version 1 must succeed even if the replica first applies v2.
  EXPECT_TRUE(store.WaitVisible(Region::kEu, "k", 1, std::chrono::seconds(5)).ok());
}

TEST_F(ReplicatedStoreTest, StaleReplayDoesNotRegress) {
  ReplicaTable table;
  table.Apply(StoredEntry{"k", "new", 5, Region::kUs, {}});
  table.Apply(StoredEntry{"k", "old", 3, Region::kUs, {}});
  auto entry = table.Get("k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bytes, "new");
  EXPECT_EQ(entry->version, 5u);
}

TEST_F(ReplicatedStoreTest, WaitVisibleTimesOut) {
  ReplicatedStore store(FastOptions("rs6", 100000.0));
  store.Put(Region::kUs, "k", "v");
  Status status = store.WaitVisible(Region::kEu, "k", 1, Millis(50));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ReplicatedStoreTest, WaitOnMissingKeyTimesOut) {
  ReplicatedStore store(FastOptions("rs7"));
  Status status = store.WaitVisible(Region::kUs, "never-written", 1, Millis(30));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ReplicatedStoreTest, StrongGetSeesLatestBeforeReplication) {
  ReplicatedStore store(FastOptions("rs8", 100000.0));
  store.Put(Region::kUs, "k", "v");
  auto entry = store.StrongGet(Region::kEu, "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bytes, "v");
  EXPECT_FALSE(store.Get(Region::kEu, "k").has_value());
}

TEST_F(ReplicatedStoreTest, ScanPrefixReturnsMatchingEntries) {
  ReplicatedStore store(FastOptions("rs9"));
  store.Put(Region::kUs, "t/1", "a");
  store.Put(Region::kUs, "t/2", "b");
  store.Put(Region::kUs, "u/1", "c");
  ReplicaTable table;
  table.Apply(StoredEntry{"t/1", "a", 1, Region::kUs, {}});
  table.Apply(StoredEntry{"t/2", "b", 1, Region::kUs, {}});
  table.Apply(StoredEntry{"u/1", "c", 1, Region::kUs, {}});
  EXPECT_EQ(table.ScanPrefix("t/").size(), 2u);
  EXPECT_EQ(table.ScanPrefix("u/").size(), 1u);
  EXPECT_EQ(table.ScanPrefix("v/").size(), 0u);
  EXPECT_EQ(table.Size(), 3u);
}

TEST_F(ReplicatedStoreTest, ApplyHookFiresForEveryRegion) {
  ReplicatedStore store(FastOptions("rs10", 20.0));
  std::atomic<int> us_applies{0};
  std::atomic<int> eu_applies{0};
  store.SetApplyHook([&](Region region, const StoredEntry&) {
    (region == Region::kUs ? us_applies : eu_applies).fetch_add(1);
  });
  store.Put(Region::kUs, "k", "v");
  store.DrainReplication();
  EXPECT_EQ(us_applies.load(), 1);
  EXPECT_EQ(eu_applies.load(), 1);
}

TEST_F(ReplicatedStoreTest, MetricsCountWritesAndReads) {
  ReplicatedStore store(FastOptions("rs11"));
  store.Put(Region::kUs, "k", std::string(100, 'x'));
  store.Get(Region::kUs, "k");
  store.Get(Region::kUs, "missing");
  EXPECT_EQ(store.metrics().writes(), 1u);
  EXPECT_EQ(store.metrics().reads(), 2u);
  EXPECT_EQ(store.metrics().read_misses(), 1u);
  EXPECT_NEAR(store.metrics().MeanObjectBytes(), 100.0, 5.0);
}

TEST_F(ReplicatedStoreTest, PerWriteOverheadShowsInMetrics) {
  auto options = FastOptions("rs12");
  options.per_write_overhead_bytes = 1000;
  ReplicatedStore store(std::move(options));
  store.Put(Region::kUs, "k", std::string(100, 'x'));
  EXPECT_NEAR(store.metrics().MeanObjectBytes(), 1100.0, 50.0);
}

TEST_F(ReplicatedStoreTest, ExtraOverheadPerPut) {
  ReplicatedStore store(FastOptions("rs13"));
  store.Put(Region::kUs, "k", std::string(100, 'x'), 500);
  EXPECT_NEAR(store.metrics().MeanObjectBytes(), 600.0, 25.0);
}

TEST_F(ReplicatedStoreTest, DrainReplicationWaitsForAllApplies) {
  ReplicatedStore store(FastOptions("rs14", 50.0));
  for (int i = 0; i < 20; ++i) {
    store.Put(Region::kUs, "k" + std::to_string(i), "v");
  }
  store.DrainReplication();
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store.IsVisible(Region::kEu, "k" + std::to_string(i), 1));
  }
}

TEST_F(ReplicatedStoreTest, ConcurrentWritersGetDistinctVersions) {
  ReplicatedStore store(FastOptions("rs15"));
  std::vector<std::thread> threads;
  std::vector<uint64_t> versions(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&store, &versions, t] { versions[static_cast<size_t>(t)] = store.Put(Region::kUs, "hot", "v"); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  std::sort(versions.begin(), versions.end());
  for (size_t i = 0; i < versions.size(); ++i) {
    EXPECT_EQ(versions[i], i + 1);
  }
}

TEST_F(ReplicatedStoreTest, ReplicationLagRecorded) {
  ReplicatedStore store(FastOptions("rs16", 80.0));
  store.Put(Region::kUs, "k", "v");
  const Histogram lag = store.metrics().ReplicationLag();
  EXPECT_EQ(lag.count(), 1u);
  EXPECT_GT(lag.Mean(), 50.0);  // base 80ms + WAN
  store.DrainReplication();
}

// Shipments of one key to one region carry the same timer affinity, so their
// applies execute serially in deadline order. With a deterministic profile
// (sigma = 0, WAN multiplier = 0) deadlines are monotonic in issue order and
// the EU apply hook must observe versions 1..N exactly — no interleaving
// worker may ever deliver version v after v+1.
TEST_F(ReplicatedStoreTest, PerKeyRegionAppliesStayOrdered) {
  auto options = FastOptions("rs17", 10.0);
  options.replication.sigma = 0.0;
  options.replication.network_delay_multiplier = 0.0;
  ReplicatedStore store(std::move(options));
  std::mutex mu;
  std::vector<uint64_t> eu_versions;
  store.SetApplyHook([&](Region region, const StoredEntry& entry) {
    if (region == Region::kEu && entry.key == "hot") {
      std::lock_guard<std::mutex> lock(mu);
      eu_versions.push_back(entry.version);
    }
  });
  constexpr uint64_t kWrites = 100;
  for (uint64_t i = 0; i < kWrites; ++i) {
    store.Put(Region::kUs, "hot", "v" + std::to_string(i));
  }
  store.DrainReplication();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(eu_versions.size(), kWrites);
  for (uint64_t i = 0; i < kWrites; ++i) {
    EXPECT_EQ(eu_versions[i], i + 1);
  }
}

// TSan target for the atomic in-flight accounting: writers racing a drainer
// (and each other) must never lose a shipment or let DrainReplication return
// while applies are outstanding. Named *Stress* for the tsan ctest preset.
TEST(ReplicatedStoreStressTest, DrainUnderLoad) {
  TimeScale::Set(0.02);
  ReplicatedStoreOptions options;
  options.name = "drain-stress";
  options.regions = {Region::kUs, Region::kEu, Region::kSg};
  options.replication.median_millis = 30.0;
  options.replication.sigma = 0.3;
  ReplicatedStore store(std::move(options));

  constexpr int kWriters = 4;
  constexpr int kWritesPerWriter = 50;
  std::atomic<bool> writers_done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (int i = 0; i < kWritesPerWriter; ++i) {
        store.Put(Region::kUs, "w" + std::to_string(w) + "/k" + std::to_string(i), "v");
      }
    });
  }
  // Drain concurrently with the writers: each return only claims that the
  // shipments issued before it completed, which the final check verifies.
  std::thread drainer([&store, &writers_done] {
    while (!writers_done.load(std::memory_order_acquire)) {
      store.DrainReplication();
    }
  });
  for (auto& writer : writers) {
    writer.join();
  }
  writers_done.store(true, std::memory_order_release);
  drainer.join();
  store.DrainReplication();
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kWritesPerWriter; ++i) {
      const std::string key = "w" + std::to_string(w) + "/k" + std::to_string(i);
      EXPECT_TRUE(store.IsVisible(Region::kEu, key, 1));
      EXPECT_TRUE(store.IsVisible(Region::kSg, key, 1));
    }
  }
  EXPECT_EQ(store.metrics().writes(), static_cast<uint64_t>(kWriters * kWritesPerWriter));
  TimeScale::Set(1.0);
}

}  // namespace
}  // namespace antipode
