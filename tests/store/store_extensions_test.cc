// Extended datastore operations: KV TTL/counters/multi-get, document
// updates/deletes, SQL deletes/counts, object listing.

#include <gtest/gtest.h>

#include "src/store/doc_store.h"
#include "src/store/kv_store.h"
#include "src/store/object_store.h"
#include "src/store/sql_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class StoreExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(StoreExtensionsTest, KvTtlExpiresKey) {
  KvStore kv(KvStore::DefaultOptions("ext-kv1", kRegions));
  kv.SetWithTtl(Region::kUs, "ephemeral", "v", 50.0);
  EXPECT_TRUE(kv.Exists(Region::kUs, "ephemeral"));
  // 50 model ms at scale 0.02 => 1 ms wall; wait comfortably longer.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (kv.Exists(Region::kUs, "ephemeral") && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(kv.Exists(Region::kUs, "ephemeral"));
}

TEST_F(StoreExtensionsTest, KvTtlExpiryReplicates) {
  KvStore kv(KvStore::DefaultOptions("ext-kv2", kRegions));
  kv.SetWithTtl(Region::kUs, "k", "v", 10.0);
  // Version 2 is the tombstone; wait until it replicates to EU.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!kv.IsVisible(Region::kEu, "k", 2) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(kv.Exists(Region::kEu, "k"));
}

TEST_F(StoreExtensionsTest, KvIncrementFromZero) {
  KvStore kv(KvStore::DefaultOptions("ext-kv3", kRegions));
  EXPECT_EQ(kv.Increment(Region::kUs, "counter"), 1);
  EXPECT_EQ(kv.Increment(Region::kUs, "counter"), 2);
  EXPECT_EQ(kv.Increment(Region::kUs, "counter", 10), 12);
  EXPECT_EQ(kv.Increment(Region::kUs, "counter", -2), 10);
  EXPECT_EQ(kv.GetValue(Region::kUs, "counter"), "10");
}

TEST_F(StoreExtensionsTest, KvIncrementTreatsGarbageAsZero) {
  KvStore kv(KvStore::DefaultOptions("ext-kv4", kRegions));
  kv.Set(Region::kUs, "k", "not-a-number");
  EXPECT_EQ(kv.Increment(Region::kUs, "k"), 1);
}

TEST_F(StoreExtensionsTest, KvMGet) {
  KvStore kv(KvStore::DefaultOptions("ext-kv5", kRegions));
  kv.Set(Region::kUs, "a", "1");
  kv.Set(Region::kUs, "c", "3");
  auto values = kv.MGet(Region::kUs, {"a", "b", "c"});
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "1");
  EXPECT_EQ(values[1], std::nullopt);
  EXPECT_EQ(values[2], "3");
}

TEST_F(StoreExtensionsTest, DocUpdateField) {
  DocStore docs(DocStore::DefaultOptions("ext-doc1", kRegions));
  docs.InsertDoc(Region::kUs, "c", "d", Document{{"a", Value("old")}, {"b", Value("keep")}});
  ASSERT_TRUE(docs.UpdateField(Region::kUs, "c", "d", "a", Value("new")).ok());
  auto doc = docs.FindById(Region::kUs, "c", "d");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("a"), Value("new"));
  EXPECT_EQ(doc->Get("b"), Value("keep"));
}

TEST_F(StoreExtensionsTest, DocUpdateMissingFails) {
  DocStore docs(DocStore::DefaultOptions("ext-doc2", kRegions));
  EXPECT_EQ(docs.UpdateField(Region::kUs, "c", "nope", "a", Value("x")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StoreExtensionsTest, DocDeleteAndCount) {
  DocStore docs(DocStore::DefaultOptions("ext-doc3", kRegions));
  docs.InsertDoc(Region::kUs, "c", "d1", Document{});
  docs.InsertDoc(Region::kUs, "c", "d2", Document{});
  EXPECT_EQ(docs.CountCollection(Region::kUs, "c"), 2u);
  docs.DeleteDoc(Region::kUs, "c", "d1");
  EXPECT_EQ(docs.CountCollection(Region::kUs, "c"), 1u);
  EXPECT_FALSE(docs.FindById(Region::kUs, "c", "d1").has_value());
}

TEST_F(StoreExtensionsTest, SqlDeleteRow) {
  SqlStore sql(SqlStore::DefaultOptions("ext-sql1", kRegions));
  sql.CreateTable("t", {"id"}, "id");
  sql.Insert(Region::kUs, "t", Row{{"id", Value("r1")}});
  ASSERT_TRUE(sql.DeleteRow(Region::kUs, "t", Value("r1")).ok());
  EXPECT_FALSE(sql.SelectByPk(Region::kUs, "t", Value("r1")).has_value());
}

TEST_F(StoreExtensionsTest, SqlDeleteFromUnknownTableFails) {
  SqlStore sql(SqlStore::DefaultOptions("ext-sql2", kRegions));
  EXPECT_EQ(sql.DeleteRow(Region::kUs, "ghosts", Value("x")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StoreExtensionsTest, SqlCountWhere) {
  SqlStore sql(SqlStore::DefaultOptions("ext-sql3", kRegions));
  sql.CreateTable("t", {"id", "group"}, "id");
  sql.Insert(Region::kUs, "t", Row{{"id", Value("1")}, {"group", Value("a")}});
  sql.Insert(Region::kUs, "t", Row{{"id", Value("2")}, {"group", Value("a")}});
  sql.Insert(Region::kUs, "t", Row{{"id", Value("3")}, {"group", Value("b")}});
  EXPECT_EQ(sql.CountWhere(Region::kUs, "t", "group", Value("a")), 2u);
}

TEST_F(StoreExtensionsTest, ObjectListAndDelete) {
  ObjectStore s3(ObjectStore::DefaultOptions("ext-s31", kRegions));
  s3.PutObject(Region::kUs, "bucket", "k1", "v1");
  s3.PutObject(Region::kUs, "bucket", "k2", "v2");
  s3.PutObject(Region::kUs, "other", "k3", "v3");
  auto keys = s3.ListObjects(Region::kUs, "bucket");
  EXPECT_EQ(keys, (std::vector<std::string>{"k1", "k2"}));
  s3.DeleteObject(Region::kUs, "bucket", "k1");
  EXPECT_EQ(s3.ListObjects(Region::kUs, "bucket"), std::vector<std::string>{"k2"});
  EXPECT_FALSE(s3.ObjectExists(Region::kUs, "bucket", "k1"));
  EXPECT_TRUE(s3.ObjectExists(Region::kUs, "bucket", "k2"));
}

}  // namespace
}  // namespace antipode
