// Queue (RabbitMQ/AMQ-like) and pub/sub (SNS-like) substrates.

#include <gtest/gtest.h>

#include <atomic>

#include "src/common/thread_pool.h"
#include "src/store/pubsub_store.h"
#include "src/store/queue_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

template <typename Predicate>
bool WaitUntil(Predicate predicate, std::chrono::milliseconds timeout = std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class BrokersTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(BrokersTest, QueueDeliversLocallyImmediately) {
  QueueStore queue(QueueStore::DefaultOptions("q1", kRegions));
  ThreadPool pool(1, "consumer");
  std::atomic<int> received{0};
  std::string payload;
  std::mutex mu;
  queue.Subscribe(Region::kUs, "jobs", &pool, [&](const BrokerMessage& message) {
    {
      std::lock_guard<std::mutex> lock(mu);
      payload = message.payload;
    }
    received.fetch_add(1);
  });
  queue.Publish(Region::kUs, "jobs", "do-it");
  EXPECT_TRUE(WaitUntil([&] { return received.load() == 1; }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(payload, "do-it");
  }
  pool.Shutdown();
}

TEST_F(BrokersTest, QueueDeliversCrossRegionAfterReplication) {
  QueueStore queue(QueueStore::DefaultOptions("q2", kRegions));
  ThreadPool pool(1, "consumer");
  std::atomic<int> received{0};
  std::atomic<int> region_ok{0};
  queue.Subscribe(Region::kEu, "jobs", &pool, [&](const BrokerMessage& message) {
    if (message.delivered_at == Region::kEu) {
      region_ok.fetch_add(1);
    }
    received.fetch_add(1);
  });
  queue.Publish(Region::kUs, "jobs", "x");
  EXPECT_EQ(received.load(), 0);  // not yet replicated (700 model ms => 7ms)
  EXPECT_TRUE(WaitUntil([&] { return received.load() == 1; }));
  EXPECT_EQ(region_ok.load(), 1);
  pool.Shutdown();
}

TEST_F(BrokersTest, QueueSeparatesChannels) {
  QueueStore queue(QueueStore::DefaultOptions("q3", kRegions));
  ThreadPool pool(1, "consumer");
  std::atomic<int> a_count{0};
  std::atomic<int> b_count{0};
  queue.Subscribe(Region::kUs, "a", &pool, [&](const BrokerMessage&) { a_count.fetch_add(1); });
  queue.Subscribe(Region::kUs, "b", &pool, [&](const BrokerMessage&) { b_count.fetch_add(1); });
  queue.Publish(Region::kUs, "a", "1");
  queue.Publish(Region::kUs, "a", "2");
  queue.Publish(Region::kUs, "b", "3");
  EXPECT_TRUE(WaitUntil([&] { return a_count.load() == 2 && b_count.load() == 1; }));
  pool.Shutdown();
}

TEST_F(BrokersTest, QueuePreservesPerChannelOrderLocally) {
  QueueStore queue(QueueStore::DefaultOptions("q4", kRegions));
  ThreadPool pool(1, "consumer");
  std::mutex mu;
  std::vector<std::string> order;
  queue.Subscribe(Region::kUs, "seq", &pool, [&](const BrokerMessage& message) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(message.payload);
  });
  for (int i = 0; i < 10; ++i) {
    queue.Publish(Region::kUs, "seq", std::to_string(i));
  }
  EXPECT_TRUE(WaitUntil([&] {
    std::lock_guard<std::mutex> lock(mu);
    return order.size() == 10;
  }));
  std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], std::to_string(i));
  }
  pool.Shutdown();
}

TEST_F(BrokersTest, QueuePublishWithKeyReturnsResolvableIdentifier) {
  QueueStore queue(QueueStore::DefaultOptions("q5", kRegions));
  auto result = queue.PublishWithKey(Region::kUs, "jobs", "payload");
  EXPECT_FALSE(result.key.empty());
  EXPECT_EQ(result.version, 1u);
  EXPECT_TRUE(queue.IsVisible(Region::kUs, result.key, result.version));
}

TEST_F(BrokersTest, QueueMessageWithoutSubscriberIsDurable) {
  QueueStore queue(QueueStore::DefaultOptions("q6", kRegions));
  auto result = queue.PublishWithKey(Region::kUs, "unwatched", "data");
  auto entry = queue.Get(Region::kUs, result.key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bytes, "data");
}

TEST_F(BrokersTest, PubSubFansOutToAllSubscribers) {
  PubSubStore pubsub(PubSubStore::DefaultOptions("ps1", kRegions));
  ThreadPool pool(2, "subs");
  std::atomic<int> us_count{0};
  std::atomic<int> eu_count{0};
  pubsub.Subscribe(Region::kUs, "topic", &pool,
                   [&](const BrokerMessage&) { us_count.fetch_add(1); });
  pubsub.Subscribe(Region::kUs, "topic", &pool,
                   [&](const BrokerMessage&) { us_count.fetch_add(1); });
  pubsub.Subscribe(Region::kEu, "topic", &pool,
                   [&](const BrokerMessage&) { eu_count.fetch_add(1); });
  pubsub.Publish(Region::kUs, "topic", "m");
  EXPECT_TRUE(WaitUntil([&] { return us_count.load() == 2 && eu_count.load() == 1; }));
  pool.Shutdown();
}

TEST_F(BrokersTest, PubSubIgnoresOtherTopics) {
  PubSubStore pubsub(PubSubStore::DefaultOptions("ps2", kRegions));
  ThreadPool pool(1, "subs");
  std::atomic<int> count{0};
  pubsub.Subscribe(Region::kUs, "t1", &pool, [&](const BrokerMessage&) { count.fetch_add(1); });
  pubsub.Publish(Region::kUs, "t2", "m");
  pubsub.Publish(Region::kUs, "t1", "m");
  EXPECT_TRUE(WaitUntil([&] { return count.load() == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(count.load(), 1);
  pool.Shutdown();
}

TEST_F(BrokersTest, PubSubCrossRegionDeliveryLags) {
  PubSubStore pubsub(PubSubStore::DefaultOptions("ps3", kRegions));
  ThreadPool pool(1, "subs");
  std::atomic<int64_t> delivery_us{0};
  std::atomic<bool> delivered{false};
  const TimePoint publish_time = SystemClock::Instance().Now();
  pubsub.Subscribe(Region::kEu, "t", &pool, [&](const BrokerMessage&) {
    delivery_us = ToMicros(std::chrono::duration_cast<Duration>(
        SystemClock::Instance().Now() - publish_time));
    delivered = true;
  });
  pubsub.Publish(Region::kUs, "t", "m");
  EXPECT_TRUE(WaitUntil([&] { return delivered.load(); }));
  // ~180 model ms + WAN at scale 0.01 => >=1ms wall.
  EXPECT_GE(delivery_us.load(), 1000);
  pool.Shutdown();
}

TEST_F(BrokersTest, ManyMessagesAllDelivered) {
  QueueStore queue(QueueStore::DefaultOptions("q7", kRegions));
  ThreadPool pool(4, "consumer");
  std::atomic<int> received{0};
  queue.Subscribe(Region::kEu, "burst", &pool,
                  [&](const BrokerMessage&) { received.fetch_add(1); });
  for (int i = 0; i < 200; ++i) {
    queue.Publish(Region::kUs, "burst", std::to_string(i));
  }
  EXPECT_TRUE(WaitUntil([&] { return received.load() == 200; }, std::chrono::seconds(10)));
  pool.Shutdown();
}

}  // namespace
}  // namespace antipode
