// Failure injection: stalled replication (partitioned / lagging replicas)
// and how the stack behaves around it.

#include <gtest/gtest.h>

#include <atomic>
#include <future>

#include "src/antipode/barrier.h"
#include "src/antipode/kv_shim.h"
#include "src/common/thread_pool.h"
#include "src/store/kv_store.h"
#include "src/store/queue_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

ReplicatedStoreOptions FastKv(const std::string& name) {
  auto options = KvStore::DefaultOptions(name, kRegions);
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.05;
  return options;
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(FailureInjectionTest, PausedReplicaDoesNotApply) {
  KvStore store(FastKv("fi1"));
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  EXPECT_TRUE(store.fault_injector()->IsStorePaused(store.name(), Region::kEu));
  store.Set(Region::kUs, "k", "v");
  store.DrainReplication();  // the timer fired, but the apply was buffered
  EXPECT_FALSE(store.IsVisible(Region::kEu, "k", 1));
  EXPECT_TRUE(store.IsVisible(Region::kUs, "k", 1));
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
}

TEST_F(FailureInjectionTest, ResumeAppliesBacklogInOrder) {
  KvStore store(FastKv("fi2"));
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  for (int i = 0; i < 5; ++i) {
    store.Set(Region::kUs, "k", "v" + std::to_string(i));
  }
  store.DrainReplication();
  EXPECT_FALSE(store.IsVisible(Region::kEu, "k", 1));
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 5));
  EXPECT_EQ(store.GetValue(Region::kEu, "k"), "v4");
}

TEST_F(FailureInjectionTest, BarrierBlocksThroughStallAndRecovers) {
  KvStore store(FastKv("fi3"));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  store.DrainReplication();

  auto barrier_future = std::async(std::launch::async, [&] {
    return Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry});
  });
  // Barrier must still be blocked while the stall lasts.
  EXPECT_EQ(barrier_future.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
  ASSERT_EQ(barrier_future.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_TRUE(barrier_future.get().ok());
}

TEST_F(FailureInjectionTest, BarrierTimeoutDuringOutage) {
  KvStore store(FastKv("fi4"));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  Lineage lineage = shim.Write(Region::kUs, "k", "v", Lineage(1));
  Status status = Barrier(lineage, Region::kEu,
                          BarrierOptions{.wait = {.timeout = Millis(50)}, .registry = &registry});
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
}

TEST_F(FailureInjectionTest, StrongReadsUnaffectedByStall) {
  KvStore store(FastKv("fi5"));
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  store.Set(Region::kUs, "k", "v");
  auto entry = store.StrongGet(Region::kEu, "k");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->bytes, "v");
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
}

TEST_F(FailureInjectionTest, QueueDeliveryResumesAfterStall) {
  QueueStore queue(QueueStore::DefaultOptions("fi6", kRegions));
  ThreadPool pool(1, "consumer");
  std::atomic<int> received{0};
  queue.Subscribe(Region::kEu, "q", &pool, [&](const BrokerMessage&) { received.fetch_add(1); });

  queue.fault_injector()->PauseStore(queue.name(), Region::kEu);
  queue.Publish(Region::kUs, "q", "m1");
  queue.Publish(Region::kUs, "q", "m2");
  queue.DrainReplication();
  EXPECT_EQ(received.load(), 0);

  queue.fault_injector()->ResumeStore(queue.name(), Region::kEu);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (received.load() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(received.load(), 2);
  pool.Shutdown();
}

TEST_F(FailureInjectionTest, StallOnOneRegionDoesNotAffectOthers) {
  auto options = KvStore::DefaultOptions("fi7", {Region::kUs, Region::kEu, Region::kSg});
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.05;
  KvStore store(std::move(options));
  store.fault_injector()->PauseStore(store.name(), Region::kEu);
  store.Set(Region::kUs, "k", "v");
  EXPECT_TRUE(store.WaitVisible(Region::kSg, "k", 1, std::chrono::seconds(5)).ok());
  EXPECT_FALSE(store.IsVisible(Region::kEu, "k", 1));
  store.fault_injector()->ResumeStore(store.name(), Region::kEu);
  EXPECT_TRUE(store.IsVisible(Region::kEu, "k", 1));
}

}  // namespace
}  // namespace antipode
