// Per-datastore behaviour: the typed APIs of the five storage substrates
// (KV/Redis, SQL/MySQL, Doc/Mongo, Object/S3, Dynamo) layered on the
// replication engine.

#include <gtest/gtest.h>

#include "src/store/doc_store.h"
#include "src/store/dynamo_store.h"
#include "src/store/kv_store.h"
#include "src/store/object_store.h"
#include "src/store/sql_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class StoresTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }
};

// ---- KvStore --------------------------------------------------------------

TEST_F(StoresTest, KvSetGet) {
  KvStore kv(KvStore::DefaultOptions("kv1", kRegions));
  kv.Set(Region::kUs, "k", "v");
  EXPECT_EQ(kv.GetValue(Region::kUs, "k"), "v");
  EXPECT_TRUE(kv.Exists(Region::kUs, "k"));
  EXPECT_FALSE(kv.Exists(Region::kUs, "other"));
}

TEST_F(StoresTest, KvDelLeavesTombstone) {
  KvStore kv(KvStore::DefaultOptions("kv2", kRegions));
  kv.Set(Region::kUs, "k", "v");
  const uint64_t del_version = kv.Del(Region::kUs, "k");
  EXPECT_EQ(del_version, 2u);
  EXPECT_EQ(kv.GetValue(Region::kUs, "k"), std::nullopt);
  EXPECT_FALSE(kv.Exists(Region::kUs, "k"));
}

TEST_F(StoresTest, KvReplicatesEventually) {
  KvStore kv(KvStore::DefaultOptions("kv3", kRegions));
  kv.Set(Region::kUs, "k", "v");
  ASSERT_TRUE(kv.WaitVisible(Region::kEu, "k", 1, std::chrono::seconds(10)).ok());
  EXPECT_EQ(kv.GetValue(Region::kEu, "k"), "v");
}

// ---- SqlStore -------------------------------------------------------------

class SqlTest : public StoresTest {
 protected:
  SqlTest() : sql_(SqlStore::DefaultOptions("sql", kRegions)) {
    sql_.CreateTable("users", {"id", "name", "age"}, "id");
  }
  SqlStore sql_;
};

TEST_F(SqlTest, CreateTableRejectsBadPrimaryKey) {
  EXPECT_EQ(sql_.CreateTable("bad", {"a", "b"}, "c").code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, CreateTableRejectsDuplicates) {
  EXPECT_EQ(sql_.CreateTable("users", {"id"}, "id").code(), StatusCode::kAlreadyExists);
}

TEST_F(SqlTest, InsertAndSelectByPk) {
  Row row{{"id", Value("u1")}, {"name", Value("alice")}, {"age", Value(static_cast<int64_t>(30))}};
  auto version = sql_.Insert(Region::kUs, "users", row);
  ASSERT_TRUE(version.ok());
  auto fetched = sql_.SelectByPk(Region::kUs, "users", Value("u1"));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->Get("name"), Value("alice"));
}

TEST_F(SqlTest, InsertMissingPkFails) {
  Row row{{"name", Value("bob")}};
  EXPECT_EQ(sql_.Insert(Region::kUs, "users", row).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, InsertUnknownColumnFails) {
  Row row{{"id", Value("u2")}, {"ghost", Value("boo")}};
  EXPECT_EQ(sql_.Insert(Region::kUs, "users", row).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SqlTest, InsertIntoUnknownTableFails) {
  Row row{{"id", Value("x")}};
  EXPECT_EQ(sql_.Insert(Region::kUs, "ghosts", row).status().code(), StatusCode::kNotFound);
}

TEST_F(SqlTest, SelectWhereFiltersByColumn) {
  sql_.Insert(Region::kUs, "users", Row{{"id", Value("u1")}, {"age", Value(static_cast<int64_t>(30))}});
  sql_.Insert(Region::kUs, "users", Row{{"id", Value("u2")}, {"age", Value(static_cast<int64_t>(30))}});
  sql_.Insert(Region::kUs, "users", Row{{"id", Value("u3")}, {"age", Value(static_cast<int64_t>(40))}});
  EXPECT_EQ(sql_.SelectWhere(Region::kUs, "users", "age", Value(static_cast<int64_t>(30))).size(),
            2u);
}

TEST_F(SqlTest, UpdateRowModifiesColumn) {
  sql_.Insert(Region::kUs, "users", Row{{"id", Value("u1")}, {"name", Value("old")}});
  ASSERT_TRUE(sql_.UpdateRow(Region::kUs, "users", Value("u1"), "name", Value("new")).ok());
  EXPECT_EQ(sql_.SelectByPk(Region::kUs, "users", Value("u1"))->Get("name"), Value("new"));
}

TEST_F(SqlTest, UpdateMissingRowFails) {
  EXPECT_EQ(sql_.UpdateRow(Region::kUs, "users", Value("nope"), "name", Value("x"))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(SqlTest, AddColumnThenInsertUsingIt) {
  ASSERT_TRUE(sql_.AddColumn("users", "email").ok());
  Row row{{"id", Value("u9")}, {"email", Value("u9@example.com")}};
  EXPECT_TRUE(sql_.Insert(Region::kUs, "users", row).ok());
}

TEST_F(SqlTest, AddDuplicateColumnFails) {
  EXPECT_EQ(sql_.AddColumn("users", "name").code(), StatusCode::kAlreadyExists);
}

TEST_F(SqlTest, CreateIndexAddsWriteAmplification) {
  sql_.Insert(Region::kUs, "users", Row{{"id", Value("u1")}});
  const double before = sql_.metrics().MeanObjectBytes();
  ASSERT_TRUE(sql_.CreateIndex("users", "name").ok());
  EXPECT_TRUE(sql_.HasIndex("users", "name"));
  sql_.Insert(Region::kUs, "users", Row{{"id", Value("u2")}});
  EXPECT_GT(sql_.metrics().MeanObjectBytes(), before + SqlStore::kIndexEntryOverheadBytes / 4);
}

TEST_F(SqlTest, CreateIndexOnUnknownColumnFails) {
  EXPECT_EQ(sql_.CreateIndex("users", "ghost").code(), StatusCode::kNotFound);
}

TEST_F(SqlTest, PrimaryKeyColumnAccessor) {
  auto pk = sql_.PrimaryKeyColumn("users");
  ASSERT_TRUE(pk.ok());
  EXPECT_EQ(*pk, "id");
  EXPECT_FALSE(sql_.PrimaryKeyColumn("ghosts").ok());
}

TEST_F(SqlTest, IntegerPrimaryKeys) {
  sql_.CreateTable("orders", {"n", "total"}, "n");
  sql_.Insert(Region::kUs, "orders",
              Row{{"n", Value(static_cast<int64_t>(7))}, {"total", Value(1.5)}});
  auto row = sql_.SelectByPk(Region::kUs, "orders", Value(static_cast<int64_t>(7)));
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->Get("total"), Value(1.5));
}

// ---- DocStore -------------------------------------------------------------

TEST_F(StoresTest, DocInsertAndFind) {
  DocStore docs(DocStore::DefaultOptions("doc1", kRegions));
  docs.InsertDoc(Region::kUs, "posts", "p1", Document{{"text", Value("hi")}});
  auto doc = docs.FindById(Region::kUs, "posts", "p1");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("text"), Value("hi"));
  EXPECT_FALSE(docs.FindById(Region::kUs, "posts", "p2").has_value());
}

TEST_F(StoresTest, DocFindWhere) {
  DocStore docs(DocStore::DefaultOptions("doc2", kRegions));
  docs.InsertDoc(Region::kUs, "posts", "p1", Document{{"author", Value("a")}});
  docs.InsertDoc(Region::kUs, "posts", "p2", Document{{"author", Value("a")}});
  docs.InsertDoc(Region::kUs, "posts", "p3", Document{{"author", Value("b")}});
  docs.InsertDoc(Region::kUs, "other", "x", Document{{"author", Value("a")}});
  EXPECT_EQ(docs.FindWhere(Region::kUs, "posts", "author", Value("a")).size(), 2u);
}

TEST_F(StoresTest, DocReplicationLagGrowsWithDistance) {
  auto eu_options = DocStore::DefaultOptions("doc-eu", {Region::kUs, Region::kEu});
  auto sg_options = DocStore::DefaultOptions("doc-sg", {Region::kUs, Region::kSg});
  DocStore eu(eu_options);
  DocStore sg(sg_options);
  for (int i = 0; i < 30; ++i) {
    eu.InsertDoc(Region::kUs, "c", "d" + std::to_string(i), Document{});
    sg.InsertDoc(Region::kUs, "c", "d" + std::to_string(i), Document{});
  }
  // The oplog multiplier makes US->SG lag clearly exceed US->EU lag.
  EXPECT_GT(sg.metrics().ReplicationLag().Mean(),
            eu.metrics().ReplicationLag().Mean() * 1.3);
  eu.DrainReplication();
  sg.DrainReplication();
}

// ---- ObjectStore ----------------------------------------------------------

TEST_F(StoresTest, ObjectPutGet) {
  ObjectStore s3(ObjectStore::DefaultOptions("s31", kRegions));
  s3.PutObject(Region::kUs, "bucket", "key", "blob");
  EXPECT_EQ(s3.GetObject(Region::kUs, "bucket", "key"), "blob");
  EXPECT_EQ(s3.GetObject(Region::kUs, "bucket", "nope"), std::nullopt);
  EXPECT_EQ(s3.GetObject(Region::kUs, "nope", "key"), std::nullopt);
}

TEST_F(StoresTest, ObjectReplicationHasHeavyTail) {
  auto options = ObjectStore::DefaultOptions("s32", kRegions);
  ObjectStore s3(options);
  for (int i = 0; i < 200; ++i) {
    s3.PutObject(Region::kUs, "b", "k" + std::to_string(i), "v");
  }
  const Histogram lag = s3.metrics().ReplicationLag();
  // Bimodal profile: p50 in seconds, p95 well above 10x the median.
  EXPECT_GT(lag.Percentile(0.95), lag.Percentile(0.50) * 5);
  s3.DrainReplication();
}

// ---- DynamoStore ----------------------------------------------------------

TEST_F(StoresTest, DynamoPutGetItem) {
  DynamoStore dynamo(DynamoStore::DefaultOptions("dy1", kRegions));
  ASSERT_TRUE(dynamo.PutItem(Region::kUs, "t", "k", Document{{"a", Value("1")}}).ok());
  auto item = dynamo.GetItem(Region::kUs, "t", "k");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->Get("a"), Value("1"));
}

TEST_F(StoresTest, DynamoRejectsOversizedItems) {
  DynamoStore dynamo(DynamoStore::DefaultOptions("dy2", kRegions));
  Document big{{"blob", Value(std::string(DynamoStore::kMaxItemBytes + 100, 'x'))}};
  auto version = dynamo.PutItem(Region::kUs, "t", "k", big);
  EXPECT_EQ(version.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(StoresTest, DynamoEventualReadMissesButConsistentReadHits) {
  auto options = DynamoStore::DefaultOptions("dy3", kRegions);
  options.replication.median_millis = 100000.0;  // effectively never replicates in test
  DynamoStore dynamo(options);
  dynamo.PutItem(Region::kUs, "t", "k", Document{{"a", Value("1")}});
  EXPECT_FALSE(dynamo.GetItem(Region::kEu, "t", "k").has_value());
  auto strong = dynamo.GetItemConsistent(Region::kEu, "t", "k");
  ASSERT_TRUE(strong.has_value());
  EXPECT_EQ(strong->Get("a"), Value("1"));
}

TEST_F(StoresTest, DynamoNotifierProfileIsSlower) {
  auto regular = DynamoStore::DefaultOptions("dyr", kRegions);
  auto notifier = DynamoStore::NotifierOptions("dyn", kRegions);
  EXPECT_GT(notifier.replication.median_millis, regular.replication.median_millis * 10);
}

}  // namespace
}  // namespace antipode
