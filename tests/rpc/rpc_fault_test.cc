// RPC deadlines, retries, and fault-injection coping paths.
//
// Satellite coverage: exact Status codes on unknown method / unregistered
// service — including under retry policies, which must never mask kNotFound —
// plus retry-until-success, deadline enforcement, and response-loss dedup.

#include <gtest/gtest.h>

#include <atomic>

#include "src/fault/fault_injector.h"
#include "src/rpc/rpc.h"

namespace antipode {
namespace {

class RpcFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }

  RpcCallOptions Retrying(int attempts, double backoff_model_ms = 20.0) {
    RpcCallOptions options;
    options.retry.max_attempts = attempts;
    options.retry.initial_backoff_model_ms = backoff_model_ms;
    options.retry.jitter = 0.0;  // deterministic schedules for window math
    return options;
  }

  ServiceRegistry registry_;
  FaultInjector injector_;  // private injector: tests never touch Default()
};

TEST_F(RpcFaultTest, UnknownServiceIsNotFoundEvenUnderRetry) {
  RpcClient client(&registry_, Region::kUs, &injector_);
  auto response = client.Call("ghost", "m", "", Retrying(5));
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(response.status().message(), "no such service: ghost");
}

TEST_F(RpcFaultTest, UnknownMethodIsNotFoundEvenUnderRetry) {
  registry_.RegisterService("svc", Region::kUs, 1);
  RpcClient client(&registry_, Region::kUs, &injector_);
  auto response = client.Call("svc", "missing", "", Retrying(5));
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(response.status().message(), "no such method: svc/missing");
}

TEST_F(RpcFaultTest, HandlerNotFoundIsNeverRetried) {
  RpcService* svc = registry_.RegisterService("lookup", Region::kUs, 1);
  std::atomic<int> runs{0};
  svc->RegisterMethod("get", [&runs](const std::string&) {
    runs.fetch_add(1);
    return Result<std::string>(Status::NotFound("no such row"));
  });
  RpcClient client(&registry_, Region::kUs, &injector_);
  auto response = client.Call("lookup", "get", "", Retrying(4));
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(runs.load(), 1);
}

TEST_F(RpcFaultTest, RetriesUntilTransientUnavailableClears) {
  RpcService* svc = registry_.RegisterService("flaky", Region::kUs, 1);
  std::atomic<int> runs{0};
  svc->RegisterMethod("m", [&runs](const std::string& payload) {
    if (runs.fetch_add(1) < 2) {
      return Result<std::string>(Status::Unavailable("warming up"));
    }
    return Result<std::string>(payload + "-ok");
  });
  RpcClient client(&registry_, Region::kUs, &injector_);
  auto response = client.Call("flaky", "m", "req", Retrying(5));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "req-ok");
  EXPECT_EQ(runs.load(), 3);
}

TEST_F(RpcFaultTest, NonIdempotentCallsNeverRetry) {
  RpcService* svc = registry_.RegisterService("once", Region::kUs, 1);
  std::atomic<int> runs{0};
  svc->RegisterMethod("m", [&runs](const std::string&) {
    runs.fetch_add(1);
    return Result<std::string>(Status::Unavailable("try again"));
  });
  RpcClient client(&registry_, Region::kUs, &injector_);
  RpcCallOptions options = Retrying(5);
  options.idempotent = false;
  auto response = client.Call("once", "m", "", options);
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(runs.load(), 1);
}

TEST_F(RpcFaultTest, SlowHandlerHitsAttemptTimeout) {
  RpcService* svc = registry_.RegisterService("slow", Region::kUs, 1);
  svc->RegisterMethod("m", [](const std::string&) {
    SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(2000.0));
    return Result<std::string>(std::string("late"));
  });
  RpcClient client(&registry_, Region::kUs, &injector_);
  RpcCallOptions options;
  options.timeout = TimeScale::FromModelMillis(100.0);
  auto response = client.Call("slow", "m", "", options);
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  // Let the abandoned handler finish before the service is torn down.
  registry_.ShutdownAll();
}

TEST_F(RpcFaultTest, OverallDeadlineBoundsAllAttempts) {
  RpcService* svc = registry_.RegisterService("slow2", Region::kUs, 2);
  std::atomic<int> runs{0};
  svc->RegisterMethod("m", [&runs](const std::string&) {
    runs.fetch_add(1);
    SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(400.0));
    return Result<std::string>(std::string("late"));
  });
  RpcClient client(&registry_, Region::kUs, &injector_);
  RpcCallOptions options = Retrying(10, 50.0);
  options.timeout = TimeScale::FromModelMillis(100.0);
  options.deadline = TimeScale::FromModelMillis(350.0);
  const TimePoint start = SystemClock::Instance().Now();
  auto response = client.Call("slow2", "m", "", options);
  const Duration elapsed =
      std::chrono::duration_cast<Duration>(SystemClock::Instance().Now() - start);
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  // All ten attempts cannot have run: the overall deadline cut the loop off.
  EXPECT_LT(runs.load(), 5);
  EXPECT_LT(elapsed, TimeScale::FromModelMillis(2000.0));
  registry_.ShutdownAll();
}

TEST_F(RpcFaultTest, InjectedFailureIsRetriedPastTheFaultWindow) {
  RpcService* svc = registry_.RegisterService("injfail", Region::kLocal, 1);
  std::atomic<int> runs{0};
  svc->RegisterMethod("m", [&runs](const std::string&) {
    runs.fetch_add(1);
    return Result<std::string>(std::string("ok"));
  });
  FaultRule rule;
  rule.kind = FaultKind::kRpcFailure;
  rule.service = "injfail";
  rule.end_model_ms = 100.0;
  injector_.Arm(FaultPlan{"rpc-fail", 1, {rule}});
  RpcClient client(&registry_, Region::kLocal, &injector_);
  // Deterministic backoff 150 ms pushes the retry past the 100 ms window.
  auto response = client.Call("injfail", "m", "", Retrying(4, 150.0));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "ok");
  EXPECT_EQ(runs.load(), 1);  // the failed attempt never reached the handler
  injector_.Disarm();
}

TEST_F(RpcFaultTest, DroppedResponseIsDeduplicatedOnRetry) {
  RpcService* svc = registry_.RegisterService("droppy", Region::kLocal, 1);
  std::atomic<int> runs{0};
  svc->RegisterMethod("m", [&runs](const std::string&) {
    runs.fetch_add(1);
    return Result<std::string>(std::string("answer"));
  });
  FaultRule rule;
  rule.kind = FaultKind::kRpcDropResponse;
  rule.service = "droppy";
  rule.end_model_ms = 100.0;
  injector_.Arm(FaultPlan{"rpc-drop", 1, {rule}});
  RpcClient client(&registry_, Region::kLocal, &injector_);
  RpcCallOptions options = Retrying(4, 300.0);
  options.timeout = TimeScale::FromModelMillis(200.0);
  // Attempt 1 runs the handler, caches the outcome, loses the response, and
  // times out at 200 ms. The 300 ms backoff lands attempt 2 past the fault
  // window; the dedup cache answers without running the handler again.
  auto response = client.Call("droppy", "m", "", options);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "answer");
  EXPECT_EQ(runs.load(), 1);
  injector_.Disarm();
}

TEST_F(RpcFaultTest, ResponseLossWithoutDeadlineIsIgnoredNotHung) {
  RpcService* svc = registry_.RegisterService("nodrop", Region::kLocal, 1);
  svc->RegisterMethod("m", [](const std::string&) {
    return Result<std::string>(std::string("ok"));
  });
  FaultRule rule;
  rule.kind = FaultKind::kRpcDropResponse;
  rule.service = "nodrop";
  injector_.Arm(FaultPlan{"rpc-drop-forever", 1, {rule}});
  RpcClient client(&registry_, Region::kLocal, &injector_);
  // No deadline: the model refuses to strand the caller, so the drop is
  // skipped and the call completes.
  auto response = client.Call("nodrop", "m", "");
  ASSERT_TRUE(response.ok());
  injector_.Disarm();
}

TEST_F(RpcFaultTest, InjectedDelayPushesCallPastDeadline) {
  RpcService* svc = registry_.RegisterService("laggy", Region::kLocal, 1);
  svc->RegisterMethod("m", [](const std::string&) {
    return Result<std::string>(std::string("ok"));
  });
  FaultRule rule;
  rule.kind = FaultKind::kRpcDelay;
  rule.service = "laggy";
  rule.delay_add_model_ms = 500.0;
  injector_.Arm(FaultPlan{"rpc-delay", 1, {rule}});
  RpcClient client(&registry_, Region::kLocal, &injector_);
  RpcCallOptions options;
  options.timeout = TimeScale::FromModelMillis(100.0);
  auto response = client.Call("laggy", "m", "", options);
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  injector_.Disarm();
}

TEST_F(RpcFaultTest, DedupCacheEvictsOldestBeyondCapacity) {
  RpcService* svc = registry_.RegisterService("cachey", Region::kLocal, 1);
  RpcServerOutcome out;
  out.result = Result<std::string>(std::string("v"));
  for (uint64_t id = 1; id <= RpcService::kDedupCacheCapacity + 10; ++id) {
    svc->CacheOutcome(id, out);
  }
  RpcServerOutcome fetched;
  EXPECT_FALSE(svc->TryGetCachedOutcome(1, &fetched));   // evicted
  EXPECT_FALSE(svc->TryGetCachedOutcome(10, &fetched));  // evicted
  EXPECT_TRUE(svc->TryGetCachedOutcome(11, &fetched));
  EXPECT_TRUE(svc->TryGetCachedOutcome(RpcService::kDedupCacheCapacity + 10, &fetched));
  ASSERT_TRUE(fetched.result.ok());
  EXPECT_EQ(*fetched.result, "v");
}

}  // namespace
}  // namespace antipode
