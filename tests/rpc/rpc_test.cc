#include "src/rpc/rpc.h"

#include <gtest/gtest.h>

#include "src/antipode/lineage_api.h"

namespace antipode {
namespace {

class RpcTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }

  ServiceRegistry registry_;
};

TEST_F(RpcTest, CallInvokesHandlerAndReturnsPayload) {
  RpcService* echo = registry_.RegisterService("echo", Region::kUs, 2);
  echo->RegisterMethod("shout", [](const std::string& payload) {
    return Result<std::string>(payload + "!");
  });
  RpcClient client(&registry_, Region::kUs);
  auto response = client.Call("echo", "shout", "hey");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "hey!");
}

TEST_F(RpcTest, UnknownServiceFails) {
  RpcClient client(&registry_, Region::kUs);
  auto response = client.Call("nope", "x", "");
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, UnknownMethodFails) {
  registry_.RegisterService("svc", Region::kUs, 1);
  RpcClient client(&registry_, Region::kUs);
  auto response = client.Call("svc", "missing", "");
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, HandlerErrorPropagates) {
  RpcService* svc = registry_.RegisterService("err", Region::kUs, 1);
  svc->RegisterMethod("fail", [](const std::string&) {
    return Result<std::string>(Status::InvalidArgument("bad input"));
  });
  RpcClient client(&registry_, Region::kUs);
  auto response = client.Call("err", "fail", "");
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.status().message(), "bad input");
}

TEST_F(RpcTest, CrossRegionCallIsSlowerThanLocal) {
  RpcService* local = registry_.RegisterService("local", Region::kUs, 1);
  RpcService* remote = registry_.RegisterService("remote", Region::kSg, 1);
  auto noop = [](const std::string&) { return Result<std::string>(std::string()); };
  local->RegisterMethod("m", noop);
  remote->RegisterMethod("m", noop);
  RpcClient client(&registry_, Region::kUs);

  const TimePoint t0 = SystemClock::Instance().Now();
  client.Call("local", "m", "");
  const auto local_elapsed = SystemClock::Instance().Now() - t0;
  const TimePoint t1 = SystemClock::Instance().Now();
  client.Call("remote", "m", "");
  const auto remote_elapsed = SystemClock::Instance().Now() - t1;
  EXPECT_GT(remote_elapsed, local_elapsed * 3);
}

TEST_F(RpcTest, ContextPropagatesIntoHandler) {
  RpcService* svc = registry_.RegisterService("ctx", Region::kUs, 1);
  svc->RegisterMethod("read-baggage", [](const std::string&) {
    RequestContext* context = RequestContext::Current();
    if (context == nullptr) {
      return Result<std::string>(Status::Internal("no context"));
    }
    return Result<std::string>(context->baggage().Get("user").value_or("none"));
  });
  ScopedContext scoped(RequestContext(11));
  RequestContext::Current()->baggage().Set("user", "alice");
  RpcClient client(&registry_, Region::kUs);
  auto response = client.Call("ctx", "read-baggage", "");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "alice");
}

TEST_F(RpcTest, HandlerBaggageFlowsBackToCaller) {
  RpcService* svc = registry_.RegisterService("back", Region::kUs, 1);
  svc->RegisterMethod("tag", [](const std::string&) {
    RequestContext::Current()->baggage().Set("server-note", "seen");
    return Result<std::string>(std::string("ok"));
  });
  ScopedContext scoped(RequestContext(12));
  RpcClient client(&registry_, Region::kUs);
  client.Call("back", "tag", "");
  EXPECT_EQ(RequestContext::Current()->baggage().Get("server-note"), "seen");
}

TEST_F(RpcTest, LineageAccumulatesAcrossNestedCalls) {
  // A callee that appends a write id to the propagated lineage; the update
  // must be visible in the caller's context after the call (Fig. 4 step 3).
  RpcService* svc = registry_.RegisterService("writer", Region::kUs, 1);
  svc->RegisterMethod("write", [](const std::string&) {
    LineageApi::Append(WriteId{"db", "k", 3});
    return Result<std::string>(std::string("ok"));
  });
  ScopedContext scoped(RequestContext(13));
  LineageApi::Root();
  RpcClient client(&registry_, Region::kUs);
  client.Call("writer", "write", "");
  auto lineage = LineageApi::Current();
  ASSERT_TRUE(lineage.has_value());
  EXPECT_TRUE(lineage->Contains(WriteId{"db", "k", 3}));
}

TEST_F(RpcTest, LineageUnionWhenBothSidesWrite) {
  RpcService* svc = registry_.RegisterService("w2", Region::kUs, 1);
  svc->RegisterMethod("write", [](const std::string&) {
    LineageApi::Append(WriteId{"db", "remote", 1});
    return Result<std::string>(std::string("ok"));
  });
  ScopedContext scoped(RequestContext(14));
  LineageApi::Root();
  LineageApi::Append(WriteId{"db", "local", 1});
  RpcClient client(&registry_, Region::kUs);
  client.Call("w2", "write", "");
  auto lineage = LineageApi::Current();
  ASSERT_TRUE(lineage.has_value());
  EXPECT_TRUE(lineage->Contains(WriteId{"db", "local", 1}));
  EXPECT_TRUE(lineage->Contains(WriteId{"db", "remote", 1}));
}

TEST_F(RpcTest, CastDeliversAsynchronously) {
  RpcService* svc = registry_.RegisterService("async", Region::kUs, 1);
  std::atomic<bool> ran{false};
  svc->RegisterMethod("fire", [&ran](const std::string&) {
    ran = true;
    return Result<std::string>(std::string());
  });
  RpcClient client(&registry_, Region::kUs);
  EXPECT_TRUE(client.Cast("async", "fire", "").ok());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!ran.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(ran.load());
}

TEST_F(RpcTest, CastToUnknownServiceFails) {
  RpcClient client(&registry_, Region::kUs);
  EXPECT_EQ(client.Cast("ghost", "m", "").code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, ConcurrentCallsAreServed) {
  RpcService* svc = registry_.RegisterService("busy", Region::kUs, 4);
  svc->RegisterMethod("m", [](const std::string& p) { return Result<std::string>(p); });
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&, i] {
      RpcClient client(&registry_, Region::kUs);
      auto response = client.Call("busy", "m", std::to_string(i));
      if (response.ok() && *response == std::to_string(i)) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ok.load(), 16);
}

TEST_F(RpcTest, CallAfterShutdownReturnsUnavailable) {
  RpcService* svc = registry_.RegisterService("gone", Region::kUs, 1);
  svc->RegisterMethod("m", [](const std::string&) { return Result<std::string>(std::string()); });
  registry_.ShutdownAll();
  RpcClient client(&registry_, Region::kUs);
  auto response = client.Call("gone", "m", "");
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace antipode
