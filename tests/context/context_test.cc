#include <gtest/gtest.h>

#include <thread>

#include "src/context/baggage.h"
#include "src/context/merge.h"
#include "src/context/request_context.h"

namespace antipode {
namespace {

TEST(BaggageTest, SetGetErase) {
  Baggage baggage;
  EXPECT_EQ(baggage.Get("k"), std::nullopt);
  baggage.Set("k", "v");
  EXPECT_EQ(baggage.Get("k"), "v");
  baggage.Set("k", "v2");
  EXPECT_EQ(baggage.Get("k"), "v2");
  baggage.Erase("k");
  EXPECT_EQ(baggage.Get("k"), std::nullopt);
}

TEST(BaggageTest, EmptyAndSize) {
  Baggage baggage;
  EXPECT_TRUE(baggage.Empty());
  baggage.Set("a", "1");
  baggage.Set("b", "2");
  EXPECT_EQ(baggage.Size(), 2u);
  EXPECT_FALSE(baggage.Empty());
}

TEST(BaggageTest, SerializeRoundTrip) {
  Baggage baggage;
  baggage.Set("trace-id", "abc123");
  baggage.Set("antipode-lineage", std::string("\x01\x02\x00\x03", 4));
  Baggage restored = Baggage::Deserialize(baggage.Serialize());
  EXPECT_EQ(restored.Get("trace-id"), "abc123");
  EXPECT_EQ(restored.Get("antipode-lineage"), std::string("\x01\x02\x00\x03", 4));
  EXPECT_EQ(restored.Size(), 2u);
}

TEST(BaggageTest, DeserializeGarbageYieldsEmpty) {
  Baggage restored = Baggage::Deserialize("not a baggage blob \xFF\xFF");
  EXPECT_LE(restored.Size(), 1u);  // best effort, never crashes
}

TEST(BaggageTest, WireSizeGrowsWithContent) {
  Baggage baggage;
  const size_t empty = baggage.WireSize();
  baggage.Set("key", "value");
  EXPECT_GT(baggage.WireSize(), empty);
}

TEST(RequestContextTest, NoContextByDefault) {
  EXPECT_EQ(RequestContext::Current(), nullptr);
  EXPECT_EQ(RequestContext::SerializeCurrent(), "");
}

TEST(RequestContextTest, ScopedContextInstallsAndRestores) {
  {
    ScopedContext scoped(RequestContext(42));
    ASSERT_NE(RequestContext::Current(), nullptr);
    EXPECT_EQ(RequestContext::Current()->trace_id(), 42u);
  }
  EXPECT_EQ(RequestContext::Current(), nullptr);
}

TEST(RequestContextTest, ScopedContextsNest) {
  ScopedContext outer(RequestContext(1));
  EXPECT_EQ(RequestContext::Current()->trace_id(), 1u);
  {
    ScopedContext inner(RequestContext(2));
    EXPECT_EQ(RequestContext::Current()->trace_id(), 2u);
  }
  EXPECT_EQ(RequestContext::Current()->trace_id(), 1u);
}

TEST(RequestContextTest, ContextIsThreadLocal) {
  ScopedContext scoped(RequestContext(7));
  std::thread other([] { EXPECT_EQ(RequestContext::Current(), nullptr); });
  other.join();
  EXPECT_EQ(RequestContext::Current()->trace_id(), 7u);
}

TEST(RequestContextTest, SerializeDeserializePreservesBaggage) {
  RequestContext context(99);
  context.baggage().Set("k", "v");
  RequestContext restored = RequestContext::Deserialize(context.Serialize());
  EXPECT_EQ(restored.trace_id(), 99u);
  EXPECT_EQ(restored.baggage().Get("k"), "v");
}

TEST(RequestContextTest, SerializeCurrentCapturesLiveBaggage) {
  ScopedContext scoped(RequestContext(5));
  RequestContext::Current()->baggage().Set("x", "y");
  RequestContext restored = RequestContext::Deserialize(RequestContext::SerializeCurrent());
  EXPECT_EQ(restored.baggage().Get("x"), "y");
}

TEST(MergeTest, DefaultPolicyOverwrites) {
  ScopedContext scoped(RequestContext(1));
  RequestContext::Current()->baggage().Set("plain", "old");
  Baggage incoming;
  incoming.Set("plain", "new");
  BaggageMergerRegistry::Instance().MergeInto(*RequestContext::Current(), incoming);
  EXPECT_EQ(RequestContext::Current()->baggage().Get("plain"), "new");
}

TEST(MergeTest, RegisteredMergerCombines) {
  BaggageMergerRegistry::Instance().Register(
      "merge-test-concat",
      [](const std::string& a, const std::string& b) { return a + "+" + b; });
  ScopedContext scoped(RequestContext(1));
  RequestContext::Current()->baggage().Set("merge-test-concat", "left");
  Baggage incoming;
  incoming.Set("merge-test-concat", "right");
  BaggageMergerRegistry::Instance().MergeInto(*RequestContext::Current(), incoming);
  EXPECT_EQ(RequestContext::Current()->baggage().Get("merge-test-concat"), "left+right");
}

TEST(MergeTest, MergerNotAppliedWhenKeyAbsentInTarget) {
  BaggageMergerRegistry::Instance().Register(
      "merge-test-once", [](const std::string&, const std::string&) { return "merged"; });
  ScopedContext scoped(RequestContext(1));
  Baggage incoming;
  incoming.Set("merge-test-once", "incoming");
  BaggageMergerRegistry::Instance().MergeInto(*RequestContext::Current(), incoming);
  EXPECT_EQ(RequestContext::Current()->baggage().Get("merge-test-once"), "incoming");
}

}  // namespace
}  // namespace antipode
