#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/latency_model.h"
#include "src/net/network.h"
#include "src/net/region.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"

namespace antipode {
namespace {

class NetTest : public ::testing::Test {
 protected:
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(NetTest, RegionNames) {
  EXPECT_EQ(RegionName(Region::kUs), "US");
  EXPECT_EQ(RegionName(Region::kEu), "EU");
  EXPECT_EQ(RegionName(Region::kSg), "SG");
  EXPECT_EQ(RegionName(Region::kLocal), "LOCAL");
}

TEST_F(NetTest, FixedLatencyIsConstant) {
  FixedLatency model(12.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.SampleMillis(), 12.5);
  }
}

TEST_F(NetTest, UniformLatencyStaysInRange) {
  UniformLatency model(5.0, 10.0, 3);
  for (int i = 0; i < 1000; ++i) {
    const double v = model.SampleMillis();
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST_F(NetTest, LognormalLatencyMedian) {
  LognormalLatency model(50.0, 0.3, 5);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) {
    samples.push_back(model.SampleMillis());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 50.0, 3.0);
}

TEST_F(NetTest, SampleScalesWithTimeScale) {
  TimeScale::Set(0.1);
  FixedLatency model(100.0);
  EXPECT_EQ(model.Sample(), Millis(10));
}

TEST_F(NetTest, TopologyMediansAreSymmetricAndOrdered) {
  RegionTopology topology;
  EXPECT_DOUBLE_EQ(topology.MedianOneWayMillis(Region::kUs, Region::kEu),
                   topology.MedianOneWayMillis(Region::kEu, Region::kUs));
  // US–SG is the longest link; intra-region is the shortest.
  EXPECT_GT(topology.MedianOneWayMillis(Region::kUs, Region::kSg),
            topology.MedianOneWayMillis(Region::kUs, Region::kEu));
  EXPECT_LT(topology.MedianOneWayMillis(Region::kUs, Region::kUs),
            topology.MedianOneWayMillis(Region::kUs, Region::kEu));
}

TEST_F(NetTest, TopologySamplesNearMedian) {
  RegionTopology topology(0.05);
  for (int i = 0; i < 100; ++i) {
    const double v = topology.SampleOneWayMillis(Region::kUs, Region::kEu);
    EXPECT_GT(v, 30.0);
    EXPECT_LT(v, 70.0);
  }
}

TEST_F(NetTest, NetworkDeliverRunsHandlerAfterDelay) {
  TimeScale::Set(0.01);
  SimulatedNetwork network;
  std::atomic<bool> delivered{false};
  network.Deliver(Region::kUs, Region::kEu, 0, [&] { delivered = true; });
  EXPECT_FALSE(delivered.load());  // 45 model ms => ~450us wall
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(delivered.load());
}

TEST_F(NetTest, SleepRttBlocksForRoundTrip) {
  TimeScale::Set(0.01);
  SimulatedNetwork network;
  const TimePoint start = SystemClock::Instance().Now();
  network.SleepRtt(Region::kUs, Region::kEu, 0, 0);
  const auto elapsed = SystemClock::Instance().Now() - start;
  // ~90 model ms round trip at scale 0.01 => ~0.9ms wall.
  EXPECT_GE(elapsed, Micros(500));
}

TEST_F(NetTest, PayloadAddsBandwidthCost) {
  EXPECT_DOUBLE_EQ(SimulatedNetwork::PayloadMillis(0), 0.0);
  EXPECT_NEAR(SimulatedNetwork::PayloadMillis(1024 * 1024), 10.0, 1e-9);
  EXPECT_GT(SimulatedNetwork::PayloadMillis(10 * 1024 * 1024),
            SimulatedNetwork::PayloadMillis(1024));
}

TEST_F(NetTest, LocalRegionIsFast) {
  RegionTopology topology;
  EXPECT_LT(topology.MedianOneWayMillis(Region::kLocal, Region::kLocal), 0.1);
}

TEST_F(NetTest, AffinityDeliveriesPreserveOrder) {
  TimeScale::Set(0.0);  // zero delay: all deliveries share one deadline
  SimulatedNetwork network;
  std::mutex mu;
  std::vector<int> order;
  constexpr TimerService::AffinityToken kFlow = 7;
  for (int i = 0; i < 20; ++i) {
    network.Deliver(Region::kUs, Region::kEu, 0, kFlow, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    std::lock_guard<std::mutex> lock(mu);
    if (order.size() == 20u) {
      break;
    }
  }
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

// Regression for the per-link instrument cache: the first CountMessage for a
// link used to publish the cached counter pointers with a benign-but-racy
// double store; it is now a std::once_flag per link. Hammering one cold link
// from many threads must be TSan-clean and lose no increments. Named
// *Metrics* so the tsan ctest preset picks it up.
TEST(NetMetricsTest, ConcurrentColdLinkCounting) {
  TimeScale::Set(0.0);
  SimulatedNetwork network;
  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 200;
  const uint64_t before =
      MetricsRegistry::Default().Snapshot().CounterTotal("net.messages");
  std::atomic<int> delivered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&network, &delivered] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        // SG->LOCAL is cold in every other test, so all threads race the
        // one-time initialization of this link's instrument cache.
        network.Deliver(Region::kSg, Region::kLocal, 8, [&delivered] { delivered.fetch_add(1); });
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (delivered.load() < kThreads * kMessagesPerThread &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(delivered.load(), kThreads * kMessagesPerThread);
  const uint64_t after =
      MetricsRegistry::Default().Snapshot().CounterTotal("net.messages");
  EXPECT_GE(after - before, static_cast<uint64_t>(kThreads * kMessagesPerThread));
  TimeScale::Set(1.0);
}

}  // namespace
}  // namespace antipode
