#include <gtest/gtest.h>

#include <atomic>

#include "src/net/latency_model.h"
#include "src/net/network.h"
#include "src/net/region.h"
#include "src/net/topology.h"

namespace antipode {
namespace {

class NetTest : public ::testing::Test {
 protected:
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(NetTest, RegionNames) {
  EXPECT_EQ(RegionName(Region::kUs), "US");
  EXPECT_EQ(RegionName(Region::kEu), "EU");
  EXPECT_EQ(RegionName(Region::kSg), "SG");
  EXPECT_EQ(RegionName(Region::kLocal), "LOCAL");
}

TEST_F(NetTest, FixedLatencyIsConstant) {
  FixedLatency model(12.5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(model.SampleMillis(), 12.5);
  }
}

TEST_F(NetTest, UniformLatencyStaysInRange) {
  UniformLatency model(5.0, 10.0, 3);
  for (int i = 0; i < 1000; ++i) {
    const double v = model.SampleMillis();
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST_F(NetTest, LognormalLatencyMedian) {
  LognormalLatency model(50.0, 0.3, 5);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) {
    samples.push_back(model.SampleMillis());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 50.0, 3.0);
}

TEST_F(NetTest, SampleScalesWithTimeScale) {
  TimeScale::Set(0.1);
  FixedLatency model(100.0);
  EXPECT_EQ(model.Sample(), Millis(10));
}

TEST_F(NetTest, TopologyMediansAreSymmetricAndOrdered) {
  RegionTopology topology;
  EXPECT_DOUBLE_EQ(topology.MedianOneWayMillis(Region::kUs, Region::kEu),
                   topology.MedianOneWayMillis(Region::kEu, Region::kUs));
  // US–SG is the longest link; intra-region is the shortest.
  EXPECT_GT(topology.MedianOneWayMillis(Region::kUs, Region::kSg),
            topology.MedianOneWayMillis(Region::kUs, Region::kEu));
  EXPECT_LT(topology.MedianOneWayMillis(Region::kUs, Region::kUs),
            topology.MedianOneWayMillis(Region::kUs, Region::kEu));
}

TEST_F(NetTest, TopologySamplesNearMedian) {
  RegionTopology topology(0.05);
  for (int i = 0; i < 100; ++i) {
    const double v = topology.SampleOneWayMillis(Region::kUs, Region::kEu);
    EXPECT_GT(v, 30.0);
    EXPECT_LT(v, 70.0);
  }
}

TEST_F(NetTest, NetworkDeliverRunsHandlerAfterDelay) {
  TimeScale::Set(0.01);
  SimulatedNetwork network;
  std::atomic<bool> delivered{false};
  network.Deliver(Region::kUs, Region::kEu, 0, [&] { delivered = true; });
  EXPECT_FALSE(delivered.load());  // 45 model ms => ~450us wall
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(delivered.load());
}

TEST_F(NetTest, SleepRttBlocksForRoundTrip) {
  TimeScale::Set(0.01);
  SimulatedNetwork network;
  const TimePoint start = SystemClock::Instance().Now();
  network.SleepRtt(Region::kUs, Region::kEu, 0, 0);
  const auto elapsed = SystemClock::Instance().Now() - start;
  // ~90 model ms round trip at scale 0.01 => ~0.9ms wall.
  EXPECT_GE(elapsed, Micros(500));
}

TEST_F(NetTest, PayloadAddsBandwidthCost) {
  EXPECT_DOUBLE_EQ(SimulatedNetwork::PayloadMillis(0), 0.0);
  EXPECT_NEAR(SimulatedNetwork::PayloadMillis(1024 * 1024), 10.0, 1e-9);
  EXPECT_GT(SimulatedNetwork::PayloadMillis(10 * 1024 * 1024),
            SimulatedNetwork::PayloadMillis(1024));
}

TEST_F(NetTest, LocalRegionIsFast) {
  RegionTopology topology;
  EXPECT_LT(topology.MedianOneWayMillis(Region::kLocal, Region::kLocal), 0.1);
}

}  // namespace
}  // namespace antipode
