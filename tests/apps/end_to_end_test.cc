// Cross-substrate integration: a request tree that spans RPC hops, two
// asynchronous broker hops, and three different datastore types, verifying
// that the lineage accumulates every write along the way and that one
// barrier at the end enforces all of it.
//
//   client ──rpc──► order-svc ──insert──► SqlStore (orders)
//                      │rpc
//                      ▼
//                  billing-svc ──insert──► DocStore (invoices)
//                      │publish
//                      ▼ queue (shipping tasks)
//             shipping worker ──write──► KvStore (tracking)
//                      │publish
//                      ▼ pub/sub (user notifications)
//             notifier worker (remote region): barrier ─► reads all three

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>

#include "src/antipode/antipode.h"
#include "src/common/thread_pool.h"
#include "src/context/request_context.h"
#include "src/rpc/rpc.h"
#include "src/store/doc_store.h"
#include "src/store/kv_store.h"
#include "src/store/pubsub_store.h"
#include "src/store/queue_store.h"
#include "src/store/sql_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(EndToEndTest, LineageAccumulatesAcrossFourSubstratesAndBarrierEnforcesAll) {
  SqlStore orders(SqlStore::DefaultOptions("e2e-orders", kRegions));
  orders.CreateTable("orders", {"id", "item"}, "id");
  DocStore invoices(DocStore::DefaultOptions("e2e-invoices", kRegions));
  KvStore tracking(KvStore::DefaultOptions("e2e-tracking", kRegions));
  QueueStore shipping(QueueStore::DefaultOptions("e2e-shipping", kRegions));
  PubSubStore notifications(PubSubStore::DefaultOptions("e2e-notif", kRegions));

  SqlShim order_shim(&orders);
  order_shim.InstrumentTable("orders", /*with_index=*/false);
  DocShim invoice_shim(&invoices);
  KvShim tracking_shim(&tracking);
  QueueShim shipping_shim(&shipping);
  PubSubShim notif_shim(&notifications);

  ShimRegistry registry;
  registry.Register(&order_shim);
  registry.Register(&invoice_shim);
  registry.Register(&tracking_shim);
  registry.Register(&shipping_shim);
  registry.Register(&notif_shim);

  ServiceRegistry services;
  RpcService* order_svc = services.RegisterService("order-svc", Region::kUs, 2);
  RpcService* billing_svc = services.RegisterService("billing-svc", Region::kUs, 2);
  ThreadPool workers(2, "workers");

  billing_svc->RegisterMethod("bill", [&](const std::string& order_id) {
    invoice_shim.InsertDocCtx(Region::kUs, "invoices", order_id,
                              Document{{"total", Value(static_cast<int64_t>(99))}});
    return Result<std::string>(std::string("billed"));
  });

  order_svc->RegisterMethod("place", [&](const std::string& order_id) {
    order_shim.InsertCtx(Region::kUs, "orders",
                         Row{{"id", Value(order_id)}, {"item", Value("widget")}});
    RpcClient client(&services, Region::kUs);
    client.Call("billing-svc", "bill", order_id);
    shipping_shim.PublishCtx(Region::kUs, "ship", order_id);
    return Result<std::string>(std::string("placed"));
  });

  // Shipping worker (US): consumes the task under its lineage, adds the
  // tracking write, forwards to the notification topic.
  shipping_shim.Subscribe(Region::kUs, "ship", &workers, [&](const ConsumedMessage& message) {
    tracking_shim.WriteCtx(Region::kUs, "track:" + message.payload, "label-printed");
    notif_shim.PublishCtx(Region::kUs, "order-updates", message.payload);
  });

  // Notifier worker (EU): the single barrier at the end of the chain.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  size_t lineage_deps = 0;
  bool all_visible = false;
  notif_shim.Subscribe(Region::kEu, "order-updates", &workers,
                       [&](const ConsumedMessage& message) {
                         Status status = Barrier(message.lineage, Region::kEu,
                                                 BarrierOptions{.registry = &registry});
                         ASSERT_TRUE(status.ok());
                         const std::string& id = message.payload;
                         const bool order_ok =
                             order_shim.SelectByPk(Region::kEu, "orders", Value(id)).ok();
                         const bool invoice_ok =
                             invoice_shim.FindById(Region::kEu, "invoices", id).ok();
                         const bool tracking_ok =
                             tracking_shim.Read(Region::kEu, "track:" + id).ok();
                         std::lock_guard<std::mutex> lock(mu);
                         lineage_deps = message.lineage.Size();
                         all_visible = order_ok && invoice_ok && tracking_ok;
                         done = true;
                         cv.notify_all();
                       });

  // The client request.
  {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LineageApi::Root();
    RpcClient client(&services, Region::kUs);
    auto response = client.Call("order-svc", "place", "order-42");
    ASSERT_TRUE(response.ok());
    // The caller's lineage already carries the synchronous writes: the order
    // row, the invoice doc, and the shipping message.
    auto lineage = LineageApi::Current();
    ASSERT_TRUE(lineage.has_value());
    EXPECT_GE(lineage->Size(), 3u);
    EXPECT_EQ(lineage->DepsForStore("e2e-orders").size(), 1u);
    EXPECT_EQ(lineage->DepsForStore("e2e-invoices").size(), 1u);
    EXPECT_EQ(lineage->DepsForStore("e2e-shipping").size(), 1u);
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(20), [&] { return done; }));
    // By the notifier, the lineage has grown to 5 deps: order row, invoice
    // doc, shipping message, tracking key, notification message.
    EXPECT_EQ(lineage_deps, 5u);
    EXPECT_TRUE(all_visible);
  }

  orders.DrainReplication();
  invoices.DrainReplication();
  tracking.DrainReplication();
  shipping.DrainReplication();
  notifications.DrainReplication();
  services.ShutdownAll();
  workers.Shutdown();
}

TEST_F(EndToEndTest, HistoryCheckerValidatesInstrumentedRun) {
  // Drive a small post-notification run, log everything into the history
  // checker, and confirm the offline verdict matches the runtime behaviour.
  auto options = KvStore::DefaultOptions("e2e-hist", kRegions);
  options.replication.median_millis = 250.0;
  options.replication.sigma = 0.05;
  KvStore store(options);
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  for (const bool use_barrier : {false, true}) {
    XcyHistoryChecker checker;
    int violations_seen = 0;
    for (int i = 0; i < 10; ++i) {
      const std::string key =
          "p" + std::to_string(i) + (use_barrier ? "-b" : "-nb");
      Lineage lineage = shim.Write(Region::kUs, key, "v", Lineage(1));
      checker.ObserveWrite(1, WriteId{store.name(), key, 1}, Lineage(1));

      if (use_barrier) {
        ASSERT_TRUE(
            Barrier(lineage, Region::kEu, BarrierOptions{.registry = &registry}).ok());
      }
      auto result = shim.Read(Region::kEu, key);
      if (!result.ok()) {
        ++violations_seen;
      }
      checker.ObserveRead(2, store.name(), "trigger-" + key, 1, lineage);
      checker.ObserveRead(2, store.name(), key, result.ok() ? 1 : 0,
                          result.ok() ? result->lineage : Lineage());
    }
    if (use_barrier) {
      EXPECT_TRUE(checker.Consistent());
      EXPECT_EQ(violations_seen, 0);
    } else {
      EXPECT_FALSE(checker.Consistent());
      EXPECT_EQ(static_cast<int>(checker.violations().size()), violations_seen);
    }
  }
}

}  // namespace
}  // namespace antipode
