// Integration tests over the three case-study applications (§7.1): each one
// exhibits XCY violations without Antipode and none with it.

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/apps/post_notification/post_notification.h"
#include "src/apps/social_network/social_network.h"
#include "src/apps/train_ticket/train_ticket.h"

namespace antipode {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(AppsTest, PostNotificationBaselineViolatesWithSlowStorage) {
  PostNotificationConfig config;
  config.post_storage = PostStorageKind::kS3;  // slowest replication
  config.notifier = NotifierKind::kSns;        // fastest notification
  config.antipode = false;
  config.num_requests = 30;
  PostNotificationResult result = RunPostNotification(config);
  EXPECT_EQ(result.requests, 30);
  EXPECT_GT(result.ViolationRate(), 0.5);
}

TEST_F(AppsTest, PostNotificationAntipodePreventsAllViolations) {
  PostNotificationConfig config;
  config.post_storage = PostStorageKind::kRedis;
  config.notifier = NotifierKind::kSns;
  config.antipode = true;
  config.num_requests = 30;
  PostNotificationResult result = RunPostNotification(config);
  EXPECT_EQ(result.violations, 0);
}

TEST_F(AppsTest, PostNotificationArtificialDelayReducesViolations) {
  PostNotificationConfig base;
  base.post_storage = PostStorageKind::kMysql;
  base.notifier = NotifierKind::kSns;
  base.num_requests = 40;
  PostNotificationResult no_delay = RunPostNotification(base);
  base.artificial_delay_model_millis = 5000.0;
  PostNotificationResult with_delay = RunPostNotification(base);
  EXPECT_LT(with_delay.ViolationRate(), no_delay.ViolationRate());
}

TEST_F(AppsTest, PostNotificationAntipodeExtendsConsistencyWindow) {
  PostNotificationConfig config;
  config.post_storage = PostStorageKind::kMysql;
  config.notifier = NotifierKind::kSns;
  config.num_requests = 30;
  config.antipode = false;
  PostNotificationResult baseline = RunPostNotification(config);
  config.antipode = true;
  PostNotificationResult antipode = RunPostNotification(config);
  // The barrier turns the window into time-to-consistency (>= replication).
  EXPECT_GT(antipode.consistency_window_model_ms.Mean(),
            baseline.consistency_window_model_ms.Mean());
}

TEST_F(AppsTest, PostNotificationObjectOverheadOnlyWithAntipode) {
  PostNotificationConfig config;
  config.post_storage = PostStorageKind::kRedis;
  config.notifier = NotifierKind::kSns;
  config.num_requests = 20;
  config.antipode = false;
  PostNotificationResult baseline = RunPostNotification(config);
  config.antipode = true;
  PostNotificationResult antipode = RunPostNotification(config);
  EXPECT_GT(antipode.mean_post_object_bytes, baseline.mean_post_object_bytes);
  EXPECT_GT(antipode.mean_notification_object_bytes, baseline.mean_notification_object_bytes);
}

TEST_F(AppsTest, PostNotificationWorksForEveryBackendPair) {
  for (auto storage : {PostStorageKind::kMysql, PostStorageKind::kDynamo,
                       PostStorageKind::kRedis, PostStorageKind::kS3}) {
    for (auto notifier : {NotifierKind::kSns, NotifierKind::kAmq, NotifierKind::kDynamo}) {
      PostNotificationConfig config;
      config.post_storage = storage;
      config.notifier = notifier;
      config.antipode = true;
      config.num_requests = 5;
      PostNotificationResult result = RunPostNotification(config);
      EXPECT_EQ(result.violations, 0)
          << PostStorageName(storage) << "/" << NotifierName(notifier);
    }
  }
}

TEST_F(AppsTest, SocialNetworkBaselineViolatesOnUsToSg) {
  SocialNetworkConfig config;
  config.remote_region = Region::kSg;
  config.antipode = false;
  config.load_rps = 60;
  config.duration_model_seconds = 1.5;
  SocialNetworkResult result = RunSocialNetwork(config);
  EXPECT_GT(result.fanout_tasks, 0u);
  EXPECT_GT(result.ViolationRate(), 0.05);
}

TEST_F(AppsTest, SocialNetworkAntipodePreventsViolations) {
  SocialNetworkConfig config;
  config.remote_region = Region::kSg;
  config.antipode = true;
  config.load_rps = 60;
  config.duration_model_seconds = 1.5;
  SocialNetworkResult result = RunSocialNetwork(config);
  EXPECT_GT(result.fanout_tasks, 0u);
  EXPECT_EQ(result.violations, 0u);
}

TEST_F(AppsTest, SocialNetworkEuViolatesLessThanSg) {
  SocialNetworkConfig config;
  config.antipode = false;
  config.load_rps = 60;
  config.duration_model_seconds = 1.5;
  config.remote_region = Region::kEu;
  SocialNetworkResult eu = RunSocialNetwork(config);
  config.remote_region = Region::kSg;
  SocialNetworkResult sg = RunSocialNetwork(config);
  EXPECT_LT(eu.ViolationRate(), sg.ViolationRate());
}

TEST_F(AppsTest, SocialNetworkLineageStaysSmall) {
  SocialNetworkConfig config;
  config.antipode = true;
  config.load_rps = 40;
  config.duration_model_seconds = 1.0;
  SocialNetworkResult result = RunSocialNetwork(config);
  EXPECT_GT(result.max_lineage_bytes, 0.0);
  EXPECT_LT(result.max_lineage_bytes, 200.0);  // §7.4
}

TEST_F(AppsTest, SocialNetworkThroughputPenaltySmallOffPeak) {
  // Off-peak, Antipode's lineage plumbing must not dent throughput (the
  // paper reports <=2%; the bound is loose because short test runs include
  // the drain tail in the measured window).
  // Gentler time compression: throughput measurements need arrival gaps well
  // above the OS sleep granularity on small machines.
  TimeScale::Set(0.1);
  SocialNetworkConfig config;
  config.load_rps = 60;
  config.duration_model_seconds = 4.0;
  config.antipode = false;
  SocialNetworkResult baseline = RunSocialNetwork(config);
  config.antipode = true;
  SocialNetworkResult antipode = RunSocialNetwork(config);
  EXPECT_GT(antipode.throughput, baseline.throughput * 0.85);
}

// TrainTicketAntipodeEliminatesViolationsAtLatencyCost lives in
// train_ticket_latency_test.cc: it compares wall-clock-derived latencies
// between two in-process load runs, so it runs serially (RUN_SERIAL) where a
// parallel ctest schedule cannot invert the comparison via CPU contention.

}  // namespace
}  // namespace antipode
