// TrainTicket latency-vs-consistency trade-off (§7.1), isolated from the
// main apps suite.
//
// This test compares latencies between two back-to-back in-process load runs
// at a gentle TimeScale. The deterministic model-time delta (the barrier on
// the cancellation path) is a few model milliseconds, which CPU contention
// from a parallel ctest schedule can swamp — the seed suite's only flake.
// Two defenses:
//   * the test binary is registered RUN_SERIAL, so no other test shares the
//     machine while it runs;
//   * the comparison uses medians, which shrug off the scheduling-noise tail
//     that inverted the mean under load.

#include <gtest/gtest.h>

#include "src/apps/train_ticket/train_ticket.h"
#include "src/common/clock.h"

namespace antipode {
namespace {

class TrainTicketLatencyTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.1); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(TrainTicketLatencyTest, TrainTicketAntipodeEliminatesViolationsAtLatencyCost) {
  TrainTicketConfig config;
  config.load_rps = 100;
  config.duration_model_seconds = 1.5;
  config.antipode = false;
  TrainTicketResult baseline = RunTrainTicket(config);
  config.antipode = true;
  TrainTicketResult antipode = RunTrainTicket(config);

  EXPECT_GT(baseline.requests, 0u);
  EXPECT_EQ(antipode.violations, 0u);
  // Barrier on the critical path: median cancellation latency strictly
  // higher.
  EXPECT_GT(antipode.cancel_latency_model_ms.Percentile(0.5),
            baseline.cancel_latency_model_ms.Percentile(0.5));
  // And the consistency window collapses.
  EXPECT_LT(antipode.consistency_window_model_ms.Percentile(0.5),
            baseline.consistency_window_model_ms.Percentile(0.5));
}

}  // namespace
}  // namespace antipode
