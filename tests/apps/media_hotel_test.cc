// The media-service case study (same violation class as the social network,
// §7.1 footnote) and the hotel-reservation negative control.

#include <gtest/gtest.h>

#include "src/apps/hotel_reservation/hotel_reservation.h"
#include "src/apps/media_service/media_service.h"
#include "src/common/clock.h"

namespace antipode {
namespace {

class MediaHotelTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.01); }
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(MediaHotelTest, MediaServiceBaselineViolates) {
  MediaServiceConfig config;
  config.antipode = false;
  config.num_reviews = 30;
  MediaServiceResult result = RunMediaService(config);
  EXPECT_EQ(result.reviews, 30);
  // S3-like media replication is far slower than the review event path, so
  // most renders miss something — often the media blob specifically.
  EXPECT_GT(result.ViolationRate(), 0.3);
  EXPECT_GT(result.media_missing + result.review_missing, 0);
}

TEST_F(MediaHotelTest, MediaServiceAntipodePreventsBothMissingKinds) {
  MediaServiceConfig config;
  config.antipode = true;
  config.num_reviews = 20;
  MediaServiceResult result = RunMediaService(config);
  EXPECT_EQ(result.review_missing, 0);
  EXPECT_EQ(result.media_missing, 0);
}

TEST_F(MediaHotelTest, MediaServiceWindowTracksSlowestStore) {
  MediaServiceConfig config;
  config.num_reviews = 20;
  config.antipode = false;
  MediaServiceResult baseline = RunMediaService(config);
  config.antipode = true;
  MediaServiceResult antipode = RunMediaService(config);
  // The barrier must wait out the S3-like store, much slower than the queue.
  EXPECT_GT(antipode.consistency_window_model_ms.Mean(),
            baseline.consistency_window_model_ms.Mean() * 2);
}

TEST_F(MediaHotelTest, HotelReservationHasNoViolations) {
  HotelReservationConfig config;
  config.num_reservations = 50;
  HotelReservationResult result = RunHotelReservation(config);
  EXPECT_EQ(result.reservations, 50);
  EXPECT_EQ(result.violations, 0);
  // The dry-run checker agrees: no candidate barrier site is ever
  // inconsistent, reproducing the paper's negative finding.
  EXPECT_EQ(result.checker_inconsistent, 0);
}

}  // namespace
}  // namespace antipode
