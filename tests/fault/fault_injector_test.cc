// FaultInjector unit tests: window activation, prefix scoping, manual
// pauses, decision determinism, and the heal contract stores build on.

#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace antipode {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }

  FaultInjector injector_;
};

FaultRule Rule(FaultKind kind) {
  FaultRule rule;
  rule.kind = kind;
  return rule;
}

TEST_F(FaultInjectorTest, UnarmedInjectorIsInert) {
  EXPECT_FALSE(injector_.armed());
  EXPECT_FALSE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
  EXPECT_FALSE(injector_.StoreStall("any", Region::kUs, Region::kEu).stalled);
  EXPECT_FALSE(injector_.InjectApplyError("any", Region::kEu));
  EXPECT_FALSE(injector_.InjectWaitError("any", Region::kEu));
  EXPECT_FALSE(injector_.DropDelivery("any", Region::kEu));
  EXPECT_FALSE(injector_.OnRpc("svc").fail_handler);
  EXPECT_FALSE(injector_.IsStorePaused("any", Region::kEu));
}

TEST_F(FaultInjectorTest, LinkDropIsDirectional) {
  FaultRule rule = Rule(FaultKind::kLinkDrop);
  rule.from = Region::kUs;
  rule.to = Region::kEu;
  injector_.Arm(FaultPlan{"drop", 1, {rule}});
  EXPECT_TRUE(injector_.armed());
  EXPECT_TRUE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
  EXPECT_FALSE(injector_.OnDeliver(Region::kEu, Region::kUs).drop);
  injector_.Disarm();
  EXPECT_FALSE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
}

TEST_F(FaultInjectorTest, UnscopedPartitionSeversLinkBothWaysAndStallsStores) {
  FaultRule rule = Rule(FaultKind::kLinkPartition);
  rule.from = Region::kUs;
  rule.to = Region::kEu;
  injector_.Arm(FaultPlan{"partition", 1, {rule}});
  EXPECT_TRUE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
  EXPECT_TRUE(injector_.OnDeliver(Region::kEu, Region::kUs).drop);
  EXPECT_FALSE(injector_.OnDeliver(Region::kUs, Region::kSg).drop);
  // Replication on the partitioned link stalls (buffers) instead of dropping.
  EXPECT_TRUE(injector_.StoreStall("db", Region::kUs, Region::kEu).stalled);
  EXPECT_TRUE(injector_.StoreStall("db", Region::kEu, Region::kUs).stalled);
  EXPECT_FALSE(injector_.StoreStall("db", Region::kUs, Region::kSg).stalled);
}

TEST_F(FaultInjectorTest, StoreScopedPartitionDoesNotTouchTheNetwork) {
  FaultRule rule = Rule(FaultKind::kLinkPartition);
  rule.store = "Redis-post-";
  injector_.Arm(FaultPlan{"scoped", 1, {rule}});
  EXPECT_FALSE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
  EXPECT_TRUE(injector_.StoreStall("Redis-post-7", Region::kUs, Region::kEu).stalled);
  EXPECT_FALSE(injector_.StoreStall("SNS-notif-7", Region::kUs, Region::kEu).stalled);
}

TEST_F(FaultInjectorTest, StorePrefixScopesApplyWaitAndDeliveryFaults) {
  FaultRule apply_error = Rule(FaultKind::kStoreApplyError);
  apply_error.store = "mysql-";
  FaultRule wait_error = Rule(FaultKind::kStoreWaitError);
  wait_error.store = "mysql-";
  FaultRule drop = Rule(FaultKind::kQueueDropDelivery);
  drop.store = "rabbit-";
  injector_.Arm(FaultPlan{"scoped", 1, {apply_error, wait_error, drop}});
  EXPECT_TRUE(injector_.InjectApplyError("mysql-13", Region::kEu));
  EXPECT_FALSE(injector_.InjectApplyError("rabbit-13", Region::kEu));
  EXPECT_TRUE(injector_.InjectWaitError("mysql-13", Region::kEu));
  EXPECT_FALSE(injector_.InjectWaitError("rabbit-13", Region::kEu));
  EXPECT_TRUE(injector_.DropDelivery("rabbit-13", Region::kEu));
  EXPECT_FALSE(injector_.DropDelivery("mysql-13", Region::kEu));
}

TEST_F(FaultInjectorTest, FutureWindowIsNotActiveYet) {
  FaultRule rule = Rule(FaultKind::kLinkDrop);
  rule.start_model_ms = 1e9;  // far future
  injector_.Arm(FaultPlan{"later", 1, {rule}});
  EXPECT_FALSE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
}

TEST_F(FaultInjectorTest, ExpiredWindowDeactivates) {
  FaultRule rule = Rule(FaultKind::kLinkDrop);
  rule.end_model_ms = 50.0;  // 1 ms wall at TimeScale 0.02
  injector_.Arm(FaultPlan{"short", 1, {rule}});
  EXPECT_TRUE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
  SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(100.0));
  EXPECT_FALSE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
}

TEST_F(FaultInjectorTest, FiniteStallWindowReportsHealTime) {
  FaultRule rule = Rule(FaultKind::kRegionOutage);
  rule.store = "db-";
  rule.to = Region::kEu;
  rule.end_model_ms = 500.0;
  injector_.Arm(FaultPlan{"outage", 1, {rule}});
  const StallDecision decision = injector_.StoreStall("db-1", Region::kUs, Region::kEu);
  EXPECT_TRUE(decision.stalled);
  EXPECT_TRUE(decision.heal_known);
  EXPECT_GT(decision.heal_in, Duration::zero());
  EXPECT_LE(decision.heal_in, TimeScale::FromModelMillis(501.0));
  EXPECT_FALSE(injector_.StoreStall("db-1", Region::kUs, Region::kUs).stalled);
}

TEST_F(FaultInjectorTest, UnboundedStallNeverReportsHeal) {
  FaultRule rule = Rule(FaultKind::kStoreStall);
  rule.to = Region::kEu;
  injector_.Arm(FaultPlan{"forever", 1, {rule}});
  const StallDecision decision = injector_.StoreStall("db", Region::kUs, Region::kEu);
  EXPECT_TRUE(decision.stalled);
  EXPECT_FALSE(decision.heal_known);
}

TEST_F(FaultInjectorTest, ManualPauseStallsUntilResume) {
  injector_.PauseStore("db", Region::kEu);
  EXPECT_TRUE(injector_.armed());
  EXPECT_TRUE(injector_.IsStorePaused("db", Region::kEu));
  EXPECT_FALSE(injector_.IsStorePaused("db", Region::kUs));
  const StallDecision decision = injector_.StoreStall("db", Region::kUs, Region::kEu);
  EXPECT_TRUE(decision.stalled);
  EXPECT_FALSE(decision.heal_known);  // only Resume heals a manual pause
  injector_.ResumeStore("db", Region::kEu);
  EXPECT_FALSE(injector_.IsStorePaused("db", Region::kEu));
  EXPECT_FALSE(injector_.StoreStall("db", Region::kUs, Region::kEu).stalled);
  EXPECT_FALSE(injector_.armed());
}

TEST_F(FaultInjectorTest, ManualPauseMatchesExactNameNotPrefix) {
  injector_.PauseStore("db", Region::kEu);
  EXPECT_FALSE(injector_.IsStorePaused("db-2", Region::kEu));
  EXPECT_FALSE(injector_.StoreStall("db-2", Region::kUs, Region::kEu).stalled);
  injector_.ResumeStore("db", Region::kEu);
}

TEST_F(FaultInjectorTest, ProbabilisticDecisionsAreSeedDeterministic) {
  FaultRule rule = Rule(FaultKind::kQueueDropDelivery);
  rule.probability = 0.3;
  FaultInjector a;
  FaultInjector b;
  a.Arm(FaultPlan{"p", 42, {rule}});
  b.Arm(FaultPlan{"p", 42, {rule}});
  std::vector<bool> seq_a;
  std::vector<bool> seq_b;
  for (int i = 0; i < 200; ++i) {
    seq_a.push_back(a.DropDelivery("q", Region::kEu));
    seq_b.push_back(b.DropDelivery("q", Region::kEu));
  }
  EXPECT_EQ(seq_a, seq_b);
  // A 0.3 drop rate should land well inside (0, 200) over 200 draws.
  const int drops = static_cast<int>(std::count(seq_a.begin(), seq_a.end(), true));
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 200);
}

TEST_F(FaultInjectorTest, RpcFaultsMatchServiceByPrefix) {
  FaultRule fail = Rule(FaultKind::kRpcFailure);
  fail.service = "compose-";
  FaultRule delay = Rule(FaultKind::kRpcDelay);
  delay.service = "compose-";
  delay.delay_add_model_ms = 40.0;
  injector_.Arm(FaultPlan{"rpc", 1, {fail, delay}});
  const RpcFault fault = injector_.OnRpc("compose-post-3");
  EXPECT_TRUE(fault.fail_handler);
  EXPECT_DOUBLE_EQ(fault.delay_add_model_ms, 40.0);
  EXPECT_FALSE(injector_.OnRpc("media-1").fail_handler);
}

TEST_F(FaultInjectorTest, RearmingReplacesThePlan) {
  FaultRule drop = Rule(FaultKind::kLinkDrop);
  injector_.Arm(FaultPlan{"first", 1, {drop}});
  EXPECT_TRUE(injector_.OnDeliver(Region::kUs, Region::kEu).drop);
  FaultRule delay = Rule(FaultKind::kLinkDelay);
  delay.delay_factor = 3.0;
  injector_.Arm(FaultPlan{"second", 1, {delay}});
  const LinkFault fault = injector_.OnDeliver(Region::kUs, Region::kEu);
  EXPECT_FALSE(fault.drop);
  EXPECT_DOUBLE_EQ(fault.delay_factor, 3.0);
}

TEST_F(FaultInjectorTest, FaultKindNamesAreUnique) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumFaultKinds; ++i) {
    names.insert(FaultKindName(static_cast<FaultKind>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumFaultKinds));
}

}  // namespace
}  // namespace antipode
