// Partition-heal convergence property, run under the deterministic
// simulation scheduler (chaos + sim labels).
//
// Episode shape, per seed: partition a random subset of a 3-region store's
// replication flows mid-workload, keep writing through the partition, heal,
// and check the recovery contract:
//   (1) every pending visibility barrier completes Ok (no hangs),
//   (2) no write is lost or double-applied through buffer + replay,
//   (3) every replica converges to the final version of every key,
//   (4) an XCY history over the run records zero violations.
//
// Every episode runs inside `ScopedSimMode`: all delays are virtual, the
// schedule is a pure function of the seed, and a failing seed replays
// exactly. That removes the threaded suite's workarounds wholesale — no
// RUN_SERIAL (nothing here is load-sensitive), no fault-window headroom
// (model time stops while the test thinks), and no
// `network_delay_multiplier = 0` hack in the replay-order episode (virtual
// write spacing is free, so it can simply exceed the full WAN jitter) — and
// buys 10× the seeds (100 → 1000) at a fraction of the wall time.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/antipode/history_checker.h"
#include "src/common/random.h"
#include "src/common/sim.h"
#include "src/common/timer_service.h"
#include "src/fault/fault_injector.h"
#include "src/net/topology.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu, Region::kSg};

class SimPartitionHealTest : public ::testing::Test {
 protected:
  // Model ms == virtual ms: simulated delays cost nothing, so there is no
  // reason to compress them.
  void SetUp() override { TimeScale::Set(1.0); }
  void TearDown() override { TimeScale::Set(1.0); }
};

using ApplyLog = std::map<std::pair<int, std::string>, std::vector<uint64_t>>;

struct Recorder {
  std::mutex mu;
  ApplyLog applied;
};

void Attach(KvStore& store, Recorder& recorder) {
  store.SetApplyHook([&recorder](Region region, const StoredEntry& entry) {
    std::lock_guard<std::mutex> lock(recorder.mu);
    recorder.applied[{RegionIndex(region), entry.key}].push_back(entry.version);
  });
}

TimerServiceOptions DeterministicTimers() {
  TimerServiceOptions options;
  options.deterministic = true;
  return options;
}

// One seeded window-heal episode; reports via gtest assertions. Returns the
// episode's event-trace hash so the caller can assert exact replay.
uint64_t RunWindowEpisode(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ScopedSimMode sim(seed);
  Rng rng(seed);

  TimerService timers(DeterministicTimers());
  RegionTopology topology(/*jitter_sigma=*/0.1, /*seed=*/seed);
  FaultInjector injector;
  const std::string store_name = "ph-" + std::to_string(seed);
  auto options = KvStore::DefaultOptions(store_name, kRegions);
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.05;
  options.replication.seed = seed;
  options.visibility_cache = nullptr;
  options.fault_injector = &injector;
  KvStore store(std::move(options), &topology, &timers);
  Recorder recorder;
  Attach(store, recorder);

  // Random link subset: each replication flow out of the writer region is
  // independently partitioned (at least one always is), under a randomly
  // chosen stall kind, starting mid-workload.
  const uint64_t num_keys = 2 + rng.NextBelow(3);        // 2..4
  const uint64_t writes_per_key = 3 + rng.NextBelow(4);  // 3..6
  constexpr double kWriteSpacingModelMs = 2.0;
  const double workload_ms =
      static_cast<double>(num_keys * writes_per_key) * kWriteSpacingModelMs;

  FaultPlan plan{"partition-heal", seed, {}};
  bool any = false;
  for (Region region : {Region::kEu, Region::kSg}) {
    if (any && !rng.NextBernoulli(0.5)) {
      continue;
    }
    any = true;
    FaultRule rule;
    const uint64_t kind = rng.NextBelow(3);
    rule.kind = kind == 0   ? FaultKind::kStoreStall
                : kind == 1 ? FaultKind::kRegionOutage
                            : FaultKind::kLinkPartition;
    rule.store = store_name;
    rule.to = region;
    rule.start_model_ms = rng.NextUniform(0.0, 20.0);
    // In virtual time the workload spans exactly its nominal spacing — the
    // threaded suite's 10× + 150 ms headroom for wall-clock overhead is gone.
    rule.end_model_ms = workload_ms + rng.NextUniform(0.0, 40.0);
    plan.rules.push_back(rule);
  }
  injector.Arm(std::move(plan));

  // Sequential writer in kUs: per-key versions 1..writes_per_key, each write
  // carrying its predecessors' lineage into the history.
  XcyHistoryChecker checker;
  constexpr uint64_t kWriterProcess = 1;
  Lineage lineage(1);
  for (uint64_t v = 1; v <= writes_per_key; ++v) {
    for (uint64_t k = 0; k < num_keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const uint64_t version = store.Set(Region::kUs, key, "v" + std::to_string(v));
      EXPECT_EQ(version, v);
      checker.ObserveWrite(kWriterProcess, WriteId{store_name, key, version}, lineage);
      lineage.Append(WriteId{store_name, key, version});
      GlobalClock().SleepFor(TimeScale::FromModelMillis(kWriteSpacingModelMs));
    }
  }

  // Pending barriers: every replica must reach the final version of every
  // key. The partitioned flows only complete after the scheduled heal — a
  // hang here is a lost or stuck backlog (and surfaces as DeadlineExceeded,
  // since RunUntil treats a quiescent heap as the deadline passing).
  for (Region region : kRegions) {
    for (uint64_t k = 0; k < num_keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const Status status =
          store.WaitVisible(region, key, writes_per_key, std::chrono::seconds(30));
      EXPECT_TRUE(status.ok()) << "region=" << RegionName(region) << " key=" << key << ": "
                               << status.message();
    }
  }
  store.DrainReplication();
  injector.Disarm();

  // Convergence + XCY: each replica reads back the final version of every
  // key; a stale read is both an EXPECT failure and a checker violation.
  uint64_t reader_process = 10;
  for (Region region : kRegions) {
    checker.ObserveMessage(kWriterProcess, reader_process);
    for (uint64_t k = 0; k < num_keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const auto entry = store.Get(region, key);
      EXPECT_TRUE(entry.has_value());
      if (!entry.has_value()) {
        continue;
      }
      EXPECT_EQ(entry->version, writes_per_key);
      checker.ObserveRead(reader_process, store_name, key, entry->version, Lineage());
    }
    ++reader_process;
  }
  EXPECT_TRUE(checker.Consistent());
  EXPECT_EQ(checker.violations().size(), 0u);

  // Exactly-once through buffer + replay: each replica saw each version of
  // each key exactly once (no losses, no duplicate applies).
  {
    std::lock_guard<std::mutex> lock(recorder.mu);
    EXPECT_EQ(recorder.applied.size(), kRegions.size() * num_keys);
    for (auto& [region_key, versions] : recorder.applied) {
      std::vector<uint64_t> sorted = versions;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(sorted.size(), writes_per_key)
          << "region " << region_key.first << " key " << region_key.second;
      if (sorted.size() != writes_per_key) {
        continue;
      }
      for (uint64_t v = 1; v <= writes_per_key; ++v) {
        EXPECT_EQ(sorted[v - 1], v)
            << "region " << region_key.first << " key " << region_key.second;
      }
    }
  }

  sim.scheduler().RunUntilQuiescent();
  timers.Shutdown();
  return sim.scheduler().TraceHash();
}

// One seeded pause-drain-resume episode: with the heal point synchronous,
// the backlog must replay strictly in per-key version order.
uint64_t RunReplayOrderEpisode(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  ScopedSimMode sim(seed);
  Rng rng(seed);

  TimerService timers(DeterministicTimers());
  RegionTopology topology(/*jitter_sigma=*/0.1, /*seed=*/seed);
  FaultInjector injector;
  const std::string store_name = "ro-" + std::to_string(seed);
  auto options = KvStore::DefaultOptions(store_name, kRegions);
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.05;
  options.replication.seed = seed;
  options.visibility_cache = nullptr;
  options.fault_injector = &injector;
  KvStore store(std::move(options), &topology, &timers);
  Recorder recorder;
  Attach(store, recorder);

  // Pause a random non-empty subset of replicas through the injector's
  // manual-stall surface (the store's resume listener replays the backlog).
  std::vector<Region> paused;
  for (Region region : {Region::kEu, Region::kSg}) {
    if (paused.empty() || rng.NextBernoulli(0.5)) {
      injector.PauseStore(store_name, region);
      EXPECT_TRUE(injector.IsStorePaused(store_name, region));
      paused.push_back(region);
    }
  }

  // Strict order needs per-key arrival order == version order. Virtual write
  // spacing is free, so instead of zeroing the WAN term (the threaded
  // suite's workaround) the spacing simply dwarfs the full jittered WAN +
  // shipping delay spread — arrivals cannot swap, jitter intact.
  const uint64_t num_keys = 2 + rng.NextBelow(3);
  const uint64_t writes_per_key = 3 + rng.NextBelow(4);
  constexpr double kWriteSpacingModelMs = 500.0;
  for (uint64_t v = 1; v <= writes_per_key; ++v) {
    for (uint64_t k = 0; k < num_keys; ++k) {
      store.Set(Region::kUs, "k" + std::to_string(k), "v" + std::to_string(v));
      GlobalClock().SleepFor(TimeScale::FromModelMillis(kWriteSpacingModelMs));
    }
  }
  // Every shipment has now either applied or buffered (buffered entries hold
  // no drain tokens, so this returns while the pause lasts).
  store.DrainReplication();
  for (Region region : paused) {
    EXPECT_FALSE(store.IsVisible(region, "k0", 1));
  }

  // Resume replays the backlog inline, in buffered (= per-key version)
  // order.
  for (Region region : paused) {
    injector.ResumeStore(store_name, region);
    EXPECT_FALSE(injector.IsStorePaused(store_name, region));
  }

  {
    std::lock_guard<std::mutex> lock(recorder.mu);
    EXPECT_EQ(recorder.applied.size(), kRegions.size() * num_keys);
    for (auto& [region_key, versions] : recorder.applied) {
      EXPECT_EQ(versions.size(), writes_per_key)
          << "region " << region_key.first << " key " << region_key.second;
      if (versions.size() != writes_per_key) {
        continue;
      }
      for (size_t i = 0; i < versions.size(); ++i) {
        EXPECT_EQ(versions[i], i + 1)
            << "out-of-order replay at region " << region_key.first << " key "
            << region_key.second;
      }
    }
  }

  sim.scheduler().RunUntilQuiescent();
  timers.Shutdown();
  return sim.scheduler().TraceHash();
}

TEST_F(SimPartitionHealTest, BacklogsReplayAndConvergeAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    RunWindowEpisode(seed);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) {
      ADD_FAILURE() << "replay: RunWindowEpisode(" << seed << ")";
      return;
    }
  }
}

TEST_F(SimPartitionHealTest, ManualPauseReplaysBacklogInOrderAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    RunReplayOrderEpisode(seed);
    if (::testing::Test::HasFatalFailure() || ::testing::Test::HasNonfatalFailure()) {
      ADD_FAILURE() << "replay: RunReplayOrderEpisode(" << seed << ")";
      return;
    }
  }
}

// Replay-from-seed: a full store episode (shipments, fault windows, heal
// timers, visibility waits) is a pure function of its seed — three runs hash
// identically, a neighbouring seed does not.
TEST_F(SimPartitionHealTest, EpisodeTraceHashesAreReproducible) {
  const uint64_t h1 = RunWindowEpisode(77);
  const uint64_t h2 = RunWindowEpisode(77);
  const uint64_t h3 = RunWindowEpisode(77);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2, h3);
  EXPECT_NE(h1, RunWindowEpisode(78));

  const uint64_t r1 = RunReplayOrderEpisode(77);
  const uint64_t r2 = RunReplayOrderEpisode(77);
  EXPECT_EQ(r1, r2);
}

}  // namespace
}  // namespace antipode
