// Partition-heal convergence property (chaos label).
//
// Episode shape, per seed: partition a random subset of a 3-region store's
// replication flows mid-workload, keep writing through the partition, heal,
// and check the recovery contract:
//   (1) every pending visibility barrier completes Ok (no hangs),
//   (2) no write is lost or double-applied through buffer + replay,
//   (3) every replica converges to the final version of every key,
//   (4) an XCY history over the run records zero violations.
//
// Strict replay *order* is asserted separately under a manual pause, where
// the heal point is synchronous (Resume replays inline) and no shipment can
// straddle the window boundary: a timer firing in the gap between window
// expiry and the scheduled replay legally applies directly and may interleave
// with the replayed backlog (the replica table ignores the stale replay).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/antipode/history_checker.h"
#include "src/common/random.h"
#include "src/fault/fault_injector.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu, Region::kSg};

class PartitionHealChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }
};

using ApplyLog = std::map<std::pair<int, std::string>, std::vector<uint64_t>>;

struct Recorder {
  std::mutex mu;
  ApplyLog applied;
};

void Attach(KvStore& store, Recorder& recorder) {
  store.SetApplyHook([&recorder](Region region, const StoredEntry& entry) {
    std::lock_guard<std::mutex> lock(recorder.mu);
    recorder.applied[{RegionIndex(region), entry.key}].push_back(entry.version);
  });
}

// One seeded window-heal episode; reports via gtest assertions.
void RunWindowEpisode(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);

  FaultInjector injector;
  const std::string store_name = "ph-" + std::to_string(seed);
  auto options = KvStore::DefaultOptions(store_name, kRegions);
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.05;
  options.fault_injector = &injector;
  KvStore store(std::move(options));
  Recorder recorder;
  Attach(store, recorder);

  // Random link subset: each replication flow out of the writer region is
  // independently partitioned (at least one always is), under a randomly
  // chosen stall kind, starting mid-workload.
  const uint64_t num_keys = 2 + rng.NextBelow(3);        // 2..4
  const uint64_t writes_per_key = 3 + rng.NextBelow(4);  // 3..6
  constexpr double kWriteSpacingModelMs = 2.0;
  const double workload_ms =
      static_cast<double>(num_keys * writes_per_key) * kWriteSpacingModelMs;

  FaultPlan plan{"partition-heal", seed, {}};
  bool any = false;
  for (Region region : {Region::kEu, Region::kSg}) {
    if (any && !rng.NextBernoulli(0.5)) {
      continue;
    }
    any = true;
    FaultRule rule;
    const uint64_t kind = rng.NextBelow(3);
    rule.kind = kind == 0   ? FaultKind::kStoreStall
                : kind == 1 ? FaultKind::kRegionOutage
                            : FaultKind::kLinkPartition;
    rule.store = store_name;
    rule.to = region;
    rule.start_model_ms = rng.NextUniform(0.0, 20.0);
    // Headroom: model time keeps flowing during each Set()'s wall-clock
    // overhead, so at a compressed TimeScale the workload spans much more
    // model time than its nominal spacing.
    rule.end_model_ms = workload_ms * 10.0 + 150.0 + rng.NextUniform(0.0, 40.0);
    plan.rules.push_back(rule);
  }
  injector.Arm(std::move(plan));

  // Sequential writer in kUs: per-key versions 1..writes_per_key, each write
  // carrying its predecessors' lineage into the history.
  XcyHistoryChecker checker;
  constexpr uint64_t kWriterProcess = 1;
  Lineage lineage(1);
  for (uint64_t v = 1; v <= writes_per_key; ++v) {
    for (uint64_t k = 0; k < num_keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const uint64_t version = store.Set(Region::kUs, key, "v" + std::to_string(v));
      EXPECT_EQ(version, v);
      checker.ObserveWrite(kWriterProcess, WriteId{store_name, key, version}, lineage);
      lineage.Append(WriteId{store_name, key, version});
      SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(kWriteSpacingModelMs));
    }
  }

  // Pending barriers: every replica must reach the final version of every
  // key. The partitioned flows only complete after the scheduled heal — a
  // hang here is a lost or stuck backlog.
  for (Region region : kRegions) {
    for (uint64_t k = 0; k < num_keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const Status status =
          store.WaitVisible(region, key, writes_per_key, std::chrono::seconds(30));
      EXPECT_TRUE(status.ok()) << "region=" << RegionName(region) << " key=" << key << ": "
                               << status.message();
    }
  }
  store.DrainReplication();
  injector.Disarm();

  // Convergence + XCY: each replica reads back the final version of every
  // key; a stale read is both an EXPECT failure and a checker violation.
  uint64_t reader_process = 10;
  for (Region region : kRegions) {
    checker.ObserveMessage(kWriterProcess, reader_process);
    for (uint64_t k = 0; k < num_keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const auto entry = store.Get(region, key);
      ASSERT_TRUE(entry.has_value());
      EXPECT_EQ(entry->version, writes_per_key);
      checker.ObserveRead(reader_process, store_name, key, entry->version, Lineage());
    }
    ++reader_process;
  }
  EXPECT_TRUE(checker.Consistent());
  EXPECT_EQ(checker.violations().size(), 0u);

  // Exactly-once through buffer + replay: each replica saw each version of
  // each key exactly once (no losses, no duplicate applies).
  std::lock_guard<std::mutex> lock(recorder.mu);
  EXPECT_EQ(recorder.applied.size(), kRegions.size() * num_keys);
  for (auto& [region_key, versions] : recorder.applied) {
    std::vector<uint64_t> sorted = versions;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), writes_per_key)
        << "region " << region_key.first << " key " << region_key.second;
    for (uint64_t v = 1; v <= writes_per_key; ++v) {
      EXPECT_EQ(sorted[v - 1], v)
          << "region " << region_key.first << " key " << region_key.second;
    }
  }
}

// One seeded pause-drain-resume episode: with the heal point synchronous,
// the backlog must replay strictly in per-key version order.
void RunReplayOrderEpisode(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Rng rng(seed);

  FaultInjector injector;
  const std::string store_name = "ro-" + std::to_string(seed);
  auto options = KvStore::DefaultOptions(store_name, kRegions);
  options.replication.median_millis = 5.0;
  options.replication.sigma = 0.05;
  // Strict order needs per-key arrival order == version order, so the lag
  // jitter must stay below the write spacing. The WAN term alone (the
  // kUs->kSg link has a 90 model-ms median with lognormal jitter) can swing
  // by tens of model ms and legally swap adjacent arrivals — drop it and
  // leave only the tight store-lag spread.
  options.replication.network_delay_multiplier = 0.0;
  options.fault_injector = &injector;
  KvStore store(std::move(options));
  Recorder recorder;
  Attach(store, recorder);

  // Pause a random non-empty subset of replicas through the injector's
  // manual-stall surface (the store's resume listener replays the backlog).
  std::vector<Region> paused;
  for (Region region : {Region::kEu, Region::kSg}) {
    if (paused.empty() || rng.NextBernoulli(0.5)) {
      injector.PauseStore(store_name, region);
      EXPECT_TRUE(injector.IsStorePaused(store_name, region));
      paused.push_back(region);
    }
  }

  // Spaced writes: the backlog preserves *arrival* order, and per-key
  // arrival order equals version order only when the write spacing exceeds
  // the replication-lag jitter (back-to-back writes may legally arrive
  // swapped; the replica table's staleness check absorbs that).
  const uint64_t num_keys = 2 + rng.NextBelow(3);
  const uint64_t writes_per_key = 3 + rng.NextBelow(4);
  for (uint64_t v = 1; v <= writes_per_key; ++v) {
    for (uint64_t k = 0; k < num_keys; ++k) {
      store.Set(Region::kUs, "k" + std::to_string(k), "v" + std::to_string(v));
      SystemClock::Instance().SleepFor(TimeScale::FromModelMillis(2.0));
    }
  }
  // Every shipment has now either applied or buffered (buffered entries hold
  // no drain tokens, so this returns while the pause lasts).
  store.DrainReplication();
  for (Region region : paused) {
    EXPECT_FALSE(store.IsVisible(region, "k0", 1));
  }

  // Resume replays the backlog inline, in buffered (= per-key version)
  // order.
  for (Region region : paused) {
    injector.ResumeStore(store_name, region);
    EXPECT_FALSE(injector.IsStorePaused(store_name, region));
  }

  std::lock_guard<std::mutex> lock(recorder.mu);
  EXPECT_EQ(recorder.applied.size(), kRegions.size() * num_keys);
  for (auto& [region_key, versions] : recorder.applied) {
    ASSERT_EQ(versions.size(), writes_per_key)
        << "region " << region_key.first << " key " << region_key.second;
    for (size_t i = 0; i < versions.size(); ++i) {
      EXPECT_EQ(versions[i], i + 1) << "out-of-order replay at region " << region_key.first
                                    << " key " << region_key.second;
    }
  }
}

TEST_F(PartitionHealChaosTest, BacklogsReplayAndConvergeAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    RunWindowEpisode(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST_F(PartitionHealChaosTest, ManualPauseReplaysBacklogInOrderAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    RunReplayOrderEpisode(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace antipode
