#include "src/trace/mesh.h"

#include <gtest/gtest.h>

#include "src/common/clock.h"

namespace antipode {
namespace {

// Executing a live mesh plan crosses real (model-latency) RPC and
// replication paths; compress time the way the fault tests do.
class LiveMeshTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::Set(0.02); }
  void TearDown() override { TimeScale::Set(1.0); }
};

// Small-but-real admission window so the builder terminates fast in tests
// while still exercising the deep-graph filter.
MeshOptions TestOptions() {
  MeshOptions options;
  options.num_plans = 6;
  options.min_live_services = 40;
  options.max_plans = 48;
  options.stateless_layer_width = 8;
  options.stateful_width = 24;
  options.num_stores = 6;
  return options;
}

TEST(MeshTopologyTest, DeterministicForOptions) {
  const MeshOptions options = TestOptions();
  const MeshTopology a = BuildMeshTopology(options);
  const MeshTopology b = BuildMeshTopology(options);
  // Identical options (seed included) must yield an identical topology:
  // same live services, same edges/store bindings, same plan sequence.
  EXPECT_EQ(a.services, b.services);
  EXPECT_EQ(a.bindings, b.bindings);
  EXPECT_EQ(a.plans, b.plans);
  EXPECT_EQ(a.stats.graphs_sampled, b.stats.graphs_sampled);
}

TEST(MeshTopologyTest, DifferentSeedDifferentTopology) {
  MeshOptions options = TestOptions();
  const MeshTopology a = BuildMeshTopology(options);
  options.gen.seed ^= 0x9E3779B97F4A7C15ULL;
  const MeshTopology b = BuildMeshTopology(options);
  EXPECT_NE(a.plans, b.plans);
}

TEST(MeshTopologyTest, AdmittedPlansAreInRegime) {
  const MeshOptions options = TestOptions();
  const MeshTopology topology = BuildMeshTopology(options);
  ASSERT_GE(topology.plans.size(), options.num_plans);
  for (const MeshPlan& plan : topology.plans) {
    EXPECT_GE(plan.stateful_calls, options.min_stateful_calls);
    EXPECT_LE(plan.stateful_calls, options.max_stateful_calls);
    EXPECT_GE(plan.max_depth, options.min_depth);
    EXPECT_LE(plan.calls.size(), options.max_plan_calls);
  }
  EXPECT_GE(topology.stats.min_stateful_calls, options.min_stateful_calls);
  EXPECT_GE(topology.stats.min_depth, options.min_depth);
  EXPECT_GE(topology.live_services(), options.min_live_services);
}

TEST(MeshTopologyTest, PlanStructureIsWellFormed) {
  const MeshTopology topology = BuildMeshTopology(TestOptions());
  for (const MeshPlan& plan : topology.plans) {
    ASSERT_FALSE(plan.calls.empty());
    // Root is the stateless entry point; the terminal-read target is the
    // execution-order-last stateful call.
    EXPECT_FALSE(plan.calls.front().stateful);
    ASSERT_LT(plan.last_stateful, plan.calls.size());
    EXPECT_TRUE(plan.calls[plan.last_stateful].stateful);
    for (uint32_t i = plan.last_stateful + 1; i < plan.calls.size(); ++i) {
      EXPECT_FALSE(plan.calls[i].stateful);
    }
    for (uint32_t i = 0; i < plan.calls.size(); ++i) {
      const MeshCall& call = plan.calls[i];
      if (call.stateful) {
        EXPECT_LT(call.target, topology.bindings.size());
        EXPECT_TRUE(call.children.empty());
      } else {
        ASSERT_LT(call.target, topology.services.size());
        // Layer-monotone identity: the DAG/no-deadlock invariant. A node
        // always precedes its children.
        EXPECT_EQ(topology.services[call.target].layer, call.depth);
        for (uint32_t child : call.children) {
          ASSERT_LT(child, plan.calls.size());
          EXPECT_GT(child, i);
          EXPECT_EQ(plan.calls[child].depth, call.depth + 1);
        }
      }
    }
  }
}

TEST(MeshTopologyTest, BindingsMapToConfiguredStores) {
  const MeshOptions options = TestOptions();
  const MeshTopology topology = BuildMeshTopology(options);
  ASSERT_FALSE(topology.bindings.empty());
  for (const MeshBinding& binding : topology.bindings) {
    EXPECT_LT(binding.service, options.stateful_width);
    EXPECT_LT(binding.store, options.num_stores);
  }
}

TEST_F(LiveMeshTest, ExecutesPlansWithZeroViolationsUnderBarrier) {
  MeshOptions options = TestOptions();
  options.num_plans = 2;
  options.min_live_services = 1;
  const MeshTopology topology = BuildMeshTopology(options);
  ASSERT_GE(topology.plans.size(), 2u);

  LiveMeshOptions live;
  live.threads_per_service = 1;
  LiveMesh mesh(&topology, live);
  for (uint64_t request = 0; request < 4; ++request) {
    RequestContext context;
    ScopedContext scoped(std::move(context));
    LiveMesh::WriterResult writer = mesh.RunWriterSide(request);
    ASSERT_TRUE(writer.status.ok()) << writer.status.message();
    // Deep plan ⇒ the carried lineage holds every stateful write.
    EXPECT_GE(writer.lineage.deps().size(),
              topology.plans[writer.plan].stateful_calls);
    EXPECT_TRUE(mesh.RunReaderSide(writer, request));
  }
  mesh.DrainReplication();
}

TEST_F(LiveMeshTest, BaselineMeshRunsWithoutAntipode) {
  MeshOptions options = TestOptions();
  options.num_plans = 1;
  options.min_live_services = 1;
  const MeshTopology topology = BuildMeshTopology(options);

  LiveMeshOptions live;
  live.antipode = false;
  live.threads_per_service = 1;
  live.tag = "baseline";
  LiveMesh mesh(&topology, live);
  RequestContext context;
  ScopedContext scoped(std::move(context));
  LiveMesh::WriterResult writer = mesh.RunWriterSide(0);
  EXPECT_TRUE(writer.status.ok()) << writer.status.message();
  EXPECT_TRUE(writer.lineage.deps().empty());
  mesh.DrainReplication();
  // After a full drain the read succeeds even without a barrier.
  EXPECT_TRUE(mesh.RunReaderSide(writer, 0));
}

}  // namespace
}  // namespace antipode
