#include "src/trace/call_graph.h"

#include <gtest/gtest.h>

namespace antipode {
namespace {

TEST(CallGraphTest, GeneratesNonEmptyGraphs) {
  CallGraphGenerator generator(TraceGenOptions{});
  for (int i = 0; i < 100; ++i) {
    CallGraphStats stats = generator.Next();
    EXPECT_GT(stats.total_calls, 0u);
    EXPECT_LE(stats.stateful_calls, stats.total_calls);
    EXPECT_LE(stats.unique_stateful_services.size(), stats.stateful_calls);
    EXPECT_EQ(stats.stateful_service_sequence.size(), stats.stateful_calls);
  }
}

TEST(CallGraphTest, DeterministicForSeed) {
  CallGraphGenerator a(TraceGenOptions{});
  CallGraphGenerator b(TraceGenOptions{});
  for (int i = 0; i < 20; ++i) {
    CallGraphStats sa = a.Next();
    CallGraphStats sb = b.Next();
    EXPECT_EQ(sa.total_calls, sb.total_calls);
    EXPECT_EQ(sa.stateful_calls, sb.stateful_calls);
  }
}

TEST(CallGraphTest, DeterministicGraphSequenceForSeed) {
  // Stronger than the stats check above: two same-seed generators emit
  // byte-identical node sequences (service ids, statefulness, depth, edges),
  // which is what the trace mesh's reproducible topology relies on.
  CallGraphGenerator a(TraceGenOptions{});
  CallGraphGenerator b(TraceGenOptions{});
  for (int i = 0; i < 20; ++i) {
    CallGraph ga = a.NextGraph();
    CallGraph gb = b.NextGraph();
    ASSERT_EQ(ga.nodes.size(), gb.nodes.size());
    for (size_t n = 0; n < ga.nodes.size(); ++n) {
      EXPECT_EQ(ga.nodes[n].service, gb.nodes[n].service);
      EXPECT_EQ(ga.nodes[n].stateful, gb.nodes[n].stateful);
      EXPECT_EQ(ga.nodes[n].depth, gb.nodes[n].depth);
      EXPECT_EQ(ga.nodes[n].children, gb.nodes[n].children);
    }
  }
}

TEST(CallGraphTest, RespectsCallCap) {
  TraceGenOptions options;
  options.max_calls_per_request = 50;
  CallGraphGenerator generator(options);
  for (int i = 0; i < 200; ++i) {
    CallGraphStats stats = generator.Next();
    EXPECT_LE(stats.total_calls, options.max_calls_per_request);
  }
}

TEST(CallGraphTest, DepthBounded) {
  TraceGenOptions options;
  CallGraphGenerator generator(options);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(generator.Next().max_depth, options.max_depth + 1);
  }
}

TEST(CallGraphTest, ServiceIdsWithinPopulation) {
  TraceGenOptions options;
  CallGraphGenerator generator(options);
  for (int i = 0; i < 50; ++i) {
    for (uint32_t service : generator.Next().unique_stateful_services) {
      EXPECT_LT(service, options.num_stateful_services);
    }
  }
}

TEST(CallGraphTest, AnalysisMatchesAlibabaShape) {
  CallGraphGenerator generator(TraceGenOptions{});
  TraceAnalysis analysis = AnalyzeTrace(generator, 5000);

  // The published calibration targets (§2.1 / Fig. 1), with test slack.
  auto fraction_at_least = [](const Histogram& h, double threshold) {
    double below = 0.0;
    for (const auto& [value, cumulative] : h.Cdf()) {
      if (value < threshold) {
        below = cumulative;
      } else {
        break;
      }
    }
    return 1.0 - below;
  };
  EXPECT_GT(fraction_at_least(analysis.stateful_calls_per_request, 20), 0.18);
  EXPECT_GT(fraction_at_least(analysis.unique_stateful_per_request, 5), 0.42);
  EXPECT_GT(analysis.depth_per_request.Mean(), 3.5);
}

TEST(CallGraphTest, MetadataSizesMatchPaperScale) {
  CallGraphGenerator generator(TraceGenOptions{});
  TraceAnalysis analysis = AnalyzeTrace(generator, 5000);
  // §7.4: ≈200 B average, <≈1 KB at p99 (generous slack for sampling noise).
  EXPECT_GT(analysis.lineage_bytes_per_request.Mean(), 50.0);
  EXPECT_LT(analysis.lineage_bytes_per_request.Mean(), 500.0);
  EXPECT_LT(analysis.lineage_bytes_per_request.Percentile(0.99), 2048.0);
}

}  // namespace
}  // namespace antipode
