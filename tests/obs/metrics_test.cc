// MetricsRegistry: instrument identity under label canonicalization, snapshot
// lookups, and — the property the old `StoreMetrics::Reset` lacked — coherent
// snapshot-and-reset under concurrent recording: every recorded increment
// lands in exactly one snapshot window, never zero, never two.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/store/store_metrics.h"

namespace antipode {
namespace {

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->value(), 5u);

  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(7);
  gauge->Add(-2);
  EXPECT_EQ(gauge->value(), 5);

  HistogramMetric* histogram = registry.GetHistogram("h");
  histogram->Record(1.0);
  histogram->Record(3.0);
  EXPECT_EQ(histogram->Snapshot().count(), 2u);
  EXPECT_EQ(registry.NumInstruments(), 3u);
}

TEST(MetricsTest, LabelsAreCanonicalizedByKey) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs", {{"region", "us"}, {"store", "kv"}});
  Counter* b = registry.GetCounter("reqs", {{"store", "kv"}, {"region", "us"}});
  EXPECT_EQ(a, b);  // same instrument regardless of label order
  Counter* c = registry.GetCounter("reqs", {{"store", "kv"}, {"region", "eu"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.NumInstruments(), 2u);

  a->Increment(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSample* sample = snapshot.Find("reqs", "region=us,store=kv");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->counter_value, 3u);
  EXPECT_EQ(snapshot.Find("reqs", "region=nope"), nullptr);
}

TEST(MetricsTest, SnapshotTotalsAcrossLabels) {
  MetricsRegistry registry;
  registry.GetCounter("writes", {{"store", "a"}})->Increment(2);
  registry.GetCounter("writes", {{"store", "b"}})->Increment(3);
  registry.GetHistogram("lat", {{"store", "a"}})->Record(1.0);
  registry.GetHistogram("lat", {{"store", "b"}})->Record(9.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterTotal("writes"), 5u);
  const Histogram merged = snapshot.HistogramTotal("lat");
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.max(), 9.0);
  EXPECT_NE(snapshot.ToString().find("writes"), std::string::npos);
}

// The headline concurrency property: N recorder threads hammer one counter
// and one histogram while the main thread repeatedly drains. The drained
// windows plus the final drain must account for every recording exactly once.
TEST(MetricsTest, SnapshotAndResetIsCoherentUnderConcurrentRecording) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hits", {{"region", "us"}});
  HistogramMetric* histogram = registry.GetHistogram("size", {{"region", "us"}});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> start{false};
  std::vector<std::thread> recorders;
  recorders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Record(1.0);
      }
    });
  }

  start.store(true, std::memory_order_release);
  uint64_t drained_counter = 0;
  uint64_t drained_histogram = 0;
  for (int round = 0; round < 50; ++round) {
    const MetricsSnapshot window = registry.SnapshotAndReset();
    const MetricSample* hits = window.Find("hits", "region=us");
    const MetricSample* size = window.Find("size", "region=us");
    ASSERT_NE(hits, nullptr);
    ASSERT_NE(size, nullptr);
    drained_counter += hits->counter_value;
    drained_histogram += size->histogram.count();
    std::this_thread::yield();
  }
  for (auto& thread : recorders) {
    thread.join();
  }
  const MetricsSnapshot last = registry.SnapshotAndReset();
  drained_counter += last.Find("hits", "region=us")->counter_value;
  drained_histogram += last.Find("size", "region=us")->histogram.count();

  EXPECT_EQ(drained_counter, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(drained_histogram, uint64_t{kThreads} * kPerThread);
  // Everything was drained: a fresh snapshot is empty.
  EXPECT_EQ(registry.Snapshot().CounterTotal("hits"), 0u);
}

TEST(MetricsTest, ConcurrentGetOrCreateReturnsOneInstrument) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[static_cast<size_t>(t)] =
          registry.GetCounter("raced", {{"region", "eu"}});
      seen[static_cast<size_t>(t)]->Increment();
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

// StoreMetrics rides the registry: the same labelled instruments are visible
// through a registry snapshot, and Reset() is the coherent drain.
TEST(MetricsTest, StoreMetricsRecordsIntoRegistry) {
  MetricsRegistry registry;
  StoreMetrics metrics("mysql-posts", &registry);
  metrics.RecordWrite(100, 20);
  metrics.RecordRead(/*hit=*/true);
  metrics.RecordRead(/*hit=*/false);

  EXPECT_EQ(metrics.writes(), 1u);
  EXPECT_EQ(metrics.reads(), 2u);
  EXPECT_EQ(metrics.read_misses(), 1u);
  EXPECT_EQ(metrics.bytes_written(), 120u);
  EXPECT_DOUBLE_EQ(metrics.MeanObjectBytes(), 120.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const MetricSample* writes = snapshot.Find("store.writes", "store=mysql-posts");
  ASSERT_NE(writes, nullptr);
  EXPECT_EQ(writes->counter_value, 1u);

  metrics.Reset();
  EXPECT_EQ(metrics.writes(), 0u);
  EXPECT_EQ(metrics.bytes_written(), 0u);
  EXPECT_EQ(registry.Snapshot().CounterTotal("store.writes"), 0u);
}

}  // namespace
}  // namespace antipode
