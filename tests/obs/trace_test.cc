// Tracing subsystem: span context propagation through baggage, across RPC
// hops, onto replication shipments, and into barrier stall attribution, plus
// the sampling and export surfaces. `Tracer::Default()` is process-wide, so
// every test runs against a cleared tracer and disables it on the way out.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "src/antipode/antipode.h"
#include "src/context/request_context.h"
#include "src/rpc/rpc.h"
#include "src/store/kv_store.h"

namespace antipode {
namespace {

const std::vector<Region> kRegions = {Region::kUs, Region::kEu};

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::Set(0.01);
    Tracer::Default().Clear();
    Tracer::Default().Enable();
  }
  void TearDown() override {
    Tracer::Default().Disable();
    Tracer::Default().Clear();
    TimeScale::Set(1.0);
  }

  static const TraceEvent* Find(const std::vector<TraceEvent>& events,
                                const std::string& name) {
    for (const auto& event : events) {
      if (event.name == name) {
        return &event;
      }
    }
    return nullptr;
  }

  static std::string Annotation(const TraceEvent& event, const std::string& key) {
    for (const auto& [k, v] : event.annotations) {
      if (k == key) {
        return v;
      }
    }
    return "";
  }
};

TEST_F(TraceTest, InjectExtractRoundTrip) {
  Baggage baggage;
  const SpanContext context{.trace_id = 0xabcdef1234ull, .span_id = 42};
  InjectSpanContext(baggage, context);
  const SpanContext back = ExtractSpanContext(baggage);
  EXPECT_EQ(back.trace_id, context.trace_id);
  EXPECT_EQ(back.span_id, context.span_id);

  // Injecting an invalid context removes the keys.
  InjectSpanContext(baggage, SpanContext{});
  EXPECT_FALSE(ExtractSpanContext(baggage).valid());
}

TEST_F(TraceTest, SpanInstallsAndRestoresCurrentContext) {
  ScopedContext scoped(RequestContext(1));
  EXPECT_FALSE(CurrentSpanContext().valid());
  {
    Span outer = Span::Start("outer");
    ASSERT_TRUE(outer.recording());
    EXPECT_EQ(CurrentSpanContext().span_id, outer.context().span_id);
    {
      Span inner = Span::Start("inner");
      EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
      EXPECT_EQ(CurrentSpanContext().span_id, inner.context().span_id);
    }
    // The inner span restored its parent as current.
    EXPECT_EQ(CurrentSpanContext().span_id, outer.context().span_id);
  }
  EXPECT_FALSE(CurrentSpanContext().valid());

  const auto events = Tracer::Default().Snapshot();
  const TraceEvent* inner = Find(events, "inner");
  const TraceEvent* outer = Find(events, "outer");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
}

TEST_F(TraceTest, DisabledTracerProducesInertSpans) {
  Tracer::Default().Disable();
  Span span = Span::Start("nope");
  EXPECT_FALSE(span.recording());
  span.Annotate("dropped", uint64_t{1});
  span.End();
  EXPECT_EQ(Tracer::Default().NumEvents(), 0u);
}

TEST_F(TraceTest, SamplePeriodTracesOneRootOutOfN) {
  Tracer::Default().Disable();
  Tracer::Default().Clear();
  Tracer::Default().Enable(/*sample_period=*/4);
  for (int i = 0; i < 8; ++i) {
    Span root = Span::Start("maybe");
  }
  EXPECT_EQ(Tracer::Default().NumEvents(), 2u);
}

// An RPC hop: the server-side handler span must join the client's trace (the
// context rides the serialized baggage), and the handler's thread must see
// the propagated context as current.
TEST_F(TraceTest, RpcHopInheritsTraceId) {
  ServiceRegistry registry;
  std::atomic<uint64_t> handler_trace_id{0};
  RpcService* echo = registry.RegisterService("echo", Region::kEu, 1);
  echo->RegisterMethod("ping", [&](const std::string& payload) {
    handler_trace_id = CurrentSpanContext().trace_id;
    return Result<std::string>(payload);
  });

  ScopedContext scoped(RequestContext(1));
  RpcClient client(&registry, Region::kUs);
  ASSERT_TRUE(client.Call("echo", "ping", "hi").ok());
  registry.ShutdownAll();

  const auto events = Tracer::Default().Snapshot();
  const TraceEvent* call = Find(events, "rpc/call");
  const TraceEvent* server = Find(events, "rpc/server");
  ASSERT_NE(call, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_NE(call->trace_id, 0u);
  EXPECT_EQ(server->trace_id, call->trace_id);
  EXPECT_EQ(server->parent_span_id, call->span_id);
  EXPECT_EQ(handler_trace_id.load(), call->trace_id);
  EXPECT_EQ(call->region, Region::kUs);
  EXPECT_EQ(server->region, Region::kEu);
  EXPECT_EQ(Annotation(*server, "service"), "echo");
}

// A replication shipment is stamped with the put span's context, so the apply
// at the remote replica lands in the same trace even though it runs on a
// timer thread with no RequestContext at all.
TEST_F(TraceTest, ReplicationApplyInheritsTraceId) {
  KvStore store(KvStore::DefaultOptions("trc-repl", kRegions));
  KvShim shim(&store);
  shim.Write(Region::kUs, "k", "v", Lineage(1));
  store.DrainReplication();

  const auto events = Tracer::Default().Snapshot();
  const TraceEvent* put = Find(events, "store/put");
  const TraceEvent* apply = Find(events, "replication/apply");
  ASSERT_NE(put, nullptr);
  ASSERT_NE(apply, nullptr);
  EXPECT_NE(put->trace_id, 0u);
  EXPECT_EQ(apply->trace_id, put->trace_id);
  EXPECT_EQ(apply->parent_span_id, put->span_id);
  EXPECT_EQ(apply->region, Region::kEu);
  EXPECT_EQ(Annotation(*apply, "store"), "trc-repl");
  EXPECT_EQ(Annotation(*apply, "key"), "k");
}

// The barrier records one parent span plus a per-dependency wait span, and
// attributes the stall to the store on the critical path.
TEST_F(TraceTest, BarrierSpanAttributesStallPerDependency) {
  KvStore store(KvStore::DefaultOptions("trc-bar", kRegions));
  KvShim shim(&store);
  ShimRegistry registry;
  registry.Register(&shim);

  ScopedContext scoped(RequestContext(1));
  LineageApi::Root();
  Span root = Span::Start("test/request");
  ASSERT_TRUE(root.recording());
  shim.WriteCtx(Region::kUs, "k", "v");
  ASSERT_TRUE(BarrierCtx(Region::kEu, BarrierOptions{.registry = &registry}).ok());
  root.End();
  store.DrainReplication();

  const auto events = Tracer::Default().Snapshot();
  const TraceEvent* barrier = Find(events, "antipode/barrier");
  const TraceEvent* wait = Find(events, "barrier/wait");
  ASSERT_NE(barrier, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(barrier->trace_id, root.context().trace_id);
  EXPECT_EQ(barrier->parent_span_id, root.context().span_id);
  EXPECT_EQ(wait->trace_id, barrier->trace_id);
  EXPECT_EQ(wait->parent_span_id, barrier->span_id);
  EXPECT_EQ(Annotation(*barrier, "deps"), "1");
  EXPECT_EQ(Annotation(*barrier, "status"), "OK");
  // One dependency, so it is trivially the critical path.
  EXPECT_EQ(Annotation(*barrier, "critical_path_store"), "trc-bar");
  EXPECT_EQ(Annotation(*barrier, "critical_path_key"), "k");
  EXPECT_EQ(Annotation(*wait, "store"), "trc-bar");
  EXPECT_EQ(Annotation(*wait, "key"), "k");
  EXPECT_FALSE(Annotation(*wait, "stall_model_ms").empty());
}

TEST_F(TraceTest, ChromeTraceAndJsonlExport) {
  {
    ScopedContext scoped(RequestContext(1));
    Span span = Span::Start("export/me", {.category = "test", .region = Region::kUs});
    span.Annotate("answer", uint64_t{42});
  }
  std::ostringstream chrome;
  Tracer::Default().WriteChromeTrace(chrome);
  const std::string chrome_json = chrome.str();
  EXPECT_NE(chrome_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome_json.find("\"export/me\""), std::string::npos);
  EXPECT_NE(chrome_json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome_json.find("\"answer\":\"42\""), std::string::npos);

  std::ostringstream jsonl;
  Tracer::Default().WriteJsonl(jsonl);
  size_t lines = 0;
  std::istringstream in(jsonl.str());
  for (std::string line; std::getline(in, line);) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, Tracer::Default().NumEvents());

  const std::string path = ::testing::TempDir() + "/antipode_trace_test.json";
  ASSERT_TRUE(Tracer::Default().ExportChromeTrace(path).ok());
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
}

}  // namespace
}  // namespace antipode
