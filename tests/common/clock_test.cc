#include "src/common/clock.h"

#include <gtest/gtest.h>

namespace antipode {
namespace {

class ClockTest : public ::testing::Test {
 protected:
  void TearDown() override { TimeScale::Set(1.0); }
};

TEST_F(ClockTest, TimeScaleConvertsModelMillis) {
  TimeScale::Set(1.0);
  EXPECT_EQ(TimeScale::FromModelMillis(2.0), Micros(2000));
  TimeScale::Set(0.5);
  EXPECT_EQ(TimeScale::FromModelMillis(2.0), Micros(1000));
  TimeScale::Set(0.01);
  EXPECT_EQ(TimeScale::FromModelMillis(100.0), Micros(1000));
}

TEST_F(ClockTest, TimeScaleRoundTrips) {
  TimeScale::Set(0.25);
  const Duration wall = TimeScale::FromModelMillis(80.0);
  EXPECT_NEAR(TimeScale::ToModelMillis(wall), 80.0, 1e-6);
}

TEST_F(ClockTest, ZeroScaleMeansNoSleep) {
  TimeScale::Set(0.0);
  EXPECT_EQ(TimeScale::FromModelMillis(1e9), Micros(0));
  EXPECT_EQ(TimeScale::ToModelMillis(Micros(500)), 0.0);
}

TEST_F(ClockTest, NegativeScaleClampsToZero) {
  TimeScale::Set(-1.0);
  EXPECT_EQ(TimeScale::Get(), 0.0);
}

TEST_F(ClockTest, SystemClockAdvances) {
  const TimePoint a = SystemClock::Instance().Now();
  SystemClock::Instance().SleepFor(Micros(1000));
  const TimePoint b = SystemClock::Instance().Now();
  EXPECT_GE(b - a, Micros(900));
}

TEST_F(ClockTest, SleepForNonPositiveReturnsImmediately) {
  const TimePoint a = SystemClock::Instance().Now();
  SystemClock::Instance().SleepFor(Micros(0));
  SystemClock::Instance().SleepFor(Micros(-100));
  const TimePoint b = SystemClock::Instance().Now();
  EXPECT_LT(b - a, Millis(50));
}

TEST_F(ClockTest, HelperConversions) {
  EXPECT_EQ(ToMicros(Millis(3)), 3000);
  EXPECT_DOUBLE_EQ(ToMillis(Micros(2500)), 2.5);
}

}  // namespace
}  // namespace antipode
