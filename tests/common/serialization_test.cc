#include "src/common/serialization.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace antipode {
namespace {

TEST(SerializationTest, FixedIntegersRoundTrip) {
  Serializer s;
  s.WriteUint8(0xAB);
  s.WriteUint32(0xDEADBEEF);
  s.WriteUint64(0x0123456789ABCDEFULL);
  Deserializer d(s.data());
  EXPECT_EQ(*d.ReadUint8(), 0xAB);
  EXPECT_EQ(*d.ReadUint32(), 0xDEADBEEFu);
  EXPECT_EQ(*d.ReadUint64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(d.AtEnd());
}

TEST(SerializationTest, VarintBoundaries) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xFFFFFFFFULL,
                     0xFFFFFFFFFFFFFFFFULL}) {
    Serializer s;
    s.WriteVarint(v);
    Deserializer d(s.data());
    EXPECT_EQ(*d.ReadVarint(), v) << v;
  }
}

TEST(SerializationTest, VarintIsCompactForSmallValues) {
  Serializer s;
  s.WriteVarint(5);
  EXPECT_EQ(s.size(), 1u);
  Serializer s2;
  s2.WriteVarint(300);
  EXPECT_EQ(s2.size(), 2u);
}

TEST(SerializationTest, StringsRoundTrip) {
  Serializer s;
  s.WriteString("");
  s.WriteString("hello");
  s.WriteString(std::string(1000, 'x'));
  std::string with_nulls("a\0b", 3);
  s.WriteString(with_nulls);
  Deserializer d(s.data());
  EXPECT_EQ(*d.ReadString(), "");
  EXPECT_EQ(*d.ReadString(), "hello");
  EXPECT_EQ(d.ReadString()->size(), 1000u);
  EXPECT_EQ(*d.ReadString(), with_nulls);
}

TEST(SerializationTest, TruncatedBufferFailsGracefully) {
  Serializer s;
  s.WriteUint64(42);
  Deserializer d(std::string_view(s.data()).substr(0, 4));
  auto v = d.ReadUint64();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(SerializationTest, TruncatedStringFails) {
  Serializer s;
  s.WriteString("hello world");
  Deserializer d(std::string_view(s.data()).substr(0, 5));
  EXPECT_FALSE(d.ReadString().ok());
}

TEST(SerializationTest, TruncatedVarintFails) {
  std::string bad("\xFF\xFF", 2);  // continuation bits with no terminator
  Deserializer d(bad);
  EXPECT_FALSE(d.ReadVarint().ok());
}

TEST(SerializationTest, OverlongVarintFails) {
  std::string bad(11, '\xFF');
  Deserializer d(bad);
  EXPECT_FALSE(d.ReadVarint().ok());
}

TEST(SerializationTest, RemainingTracksPosition) {
  Serializer s;
  s.WriteUint32(1);
  s.WriteUint32(2);
  Deserializer d(s.data());
  EXPECT_EQ(d.Remaining(), 8u);
  d.ReadUint32();
  EXPECT_EQ(d.Remaining(), 4u);
}

// Fuzz-ish property: random sequences of typed writes always read back.
TEST(SerializationTest, RandomRoundTripProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Serializer s;
    std::vector<int> kinds;
    std::vector<uint64_t> ints;
    std::vector<std::string> strings;
    const int ops = 1 + static_cast<int>(rng.NextBelow(20));
    for (int i = 0; i < ops; ++i) {
      const int kind = static_cast<int>(rng.NextBelow(3));
      kinds.push_back(kind);
      if (kind == 0) {
        ints.push_back(rng.NextUint64());
        s.WriteUint64(ints.back());
      } else if (kind == 1) {
        ints.push_back(rng.NextUint64());
        s.WriteVarint(ints.back());
      } else {
        strings.push_back(std::string(rng.NextBelow(50), 'q'));
        s.WriteString(strings.back());
      }
    }
    Deserializer d(s.data());
    size_t int_index = 0;
    size_t string_index = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        EXPECT_EQ(*d.ReadUint64(), ints[int_index++]);
      } else if (kind == 1) {
        EXPECT_EQ(*d.ReadVarint(), ints[int_index++]);
      } else {
        EXPECT_EQ(*d.ReadString(), strings[string_index++]);
      }
    }
    EXPECT_TRUE(d.AtEnd());
  }
}

// Random garbage never crashes the deserializer.
TEST(SerializationTest, GarbageInputIsSafe) {
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    const size_t len = rng.NextBelow(64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    Deserializer d(garbage);
    (void)d.ReadString();
    (void)d.ReadVarint();
    (void)d.ReadUint64();
  }
}

}  // namespace
}  // namespace antipode
