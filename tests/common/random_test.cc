#include "src/common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace antipode {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextUniform(10.0, 20.0);
  }
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(RngTest, ExponentialIsNonNegative) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextExponential(3.0), 0.0);
  }
}

TEST(RngTest, LognormalMedianMatches) {
  Rng rng(15);
  std::vector<double> samples;
  const int n = 100001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    samples.push_back(rng.NextLognormal(100.0, 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 100.0, 3.0);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(ZipfTest, StaysInRange) {
  Rng rng(21);
  ZipfDistribution zipf(100, 0.99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 100u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(23);
  ZipfDistribution zipf(1000, 0.99);
  int low = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 10) {
      ++low;
    }
  }
  // With theta≈1 the top-1% of ranks absorbs a large constant fraction.
  EXPECT_GT(static_cast<double>(low) / n, 0.25);
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  Rng rng(25);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, FirstRankIsModal) {
  Rng rng(27);
  ZipfDistribution zipf(50, GetParam());
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(counts[0], max_count);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSweepTest, ::testing::Values(0.5, 0.8, 0.99, 1.2, 1.5));

}  // namespace
}  // namespace antipode
