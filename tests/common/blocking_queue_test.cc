#include "src/common/blocking_queue.h"

#include <gtest/gtest.h>

#include <thread>

namespace antipode {
namespace {

TEST(BlockingQueueTest, PushPopFifo) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BlockingQueueTest, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.Size(), 0u);
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
  q.Pop();
  EXPECT_EQ(q.Size(), 1u);
}

TEST(BlockingQueueTest, BoundedTryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::thread popper([&q] { EXPECT_EQ(q.Pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  popper.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BlockingQueueTest, PushAfterCloseFails) {
  BlockingQueue<int> q;
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
  EXPECT_TRUE(q.Closed());
}

TEST(BlockingQueueTest, PopWithTimeoutTimesOut) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PopWithTimeout(Millis(30)), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start, Millis(25));
}

TEST(BlockingQueueTest, PopWithTimeoutReturnsItem) {
  BlockingQueue<int> q;
  q.Push(9);
  EXPECT_EQ(q.PopWithTimeout(Millis(30)), 9);
}

TEST(BlockingQueueTest, BlockedPushUnblocksOnPop) {
  BlockingQueue<int> q(1);
  q.Push(1);
  std::thread pusher([&q] { EXPECT_TRUE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.Pop(), 1);
  pusher.join();
  EXPECT_EQ(q.Pop(), 2);
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q(64);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(i);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&q, &consumed] {
      while (q.Pop().has_value()) {
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<size_t>(p)].join();
  }
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }
  EXPECT_EQ(consumed.load(), kPerProducer * kProducers);
}

TEST(BlockingQueueTest, MoveOnlyItems) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.Push(std::make_unique<int>(5));
  auto item = q.Pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 5);
}

}  // namespace
}  // namespace antipode
