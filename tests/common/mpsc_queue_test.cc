#include "src/common/mpsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace antipode {
namespace {

TEST(MpscQueueTest, SingleProducerFifo) {
  MpscQueue<int> q;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.Push(i));
  }
  EXPECT_EQ(q.Size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(MpscQueueTest, TryPopEmptyReturnsNullopt) {
  MpscQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpscQueueTest, MoveOnlyValues) {
  MpscQueue<std::unique_ptr<int>> q;
  q.Push(std::make_unique<int>(42));
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(MpscQueueTest, PushAfterCloseRejected) {
  MpscQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  // Values queued before the close still drain.
  auto v = q.PopWait();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  EXPECT_FALSE(q.PopWait().has_value());
}

TEST(MpscQueueTest, PopWaitBlocksUntilPush) {
  MpscQueue<int> q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto v = q.PopWait();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    got.store(true);
  });
  // Give the consumer a chance to park before the push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Push(7);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(MpscQueueTest, CloseWakesParkedConsumer) {
  MpscQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.PopWait().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

// Regression for a lost-wakeup hang: the consumer's wait loop must
// re-announce it is parked on every pass, or a Push that lands between a
// spurious wake's TryPop miss and the re-park never signals, and the
// consumer sleeps forever on a non-empty queue. Thousands of tight
// park/wake cycles make that window hot; with the bug this test hangs
// (caught by the suite timeout) roughly one run in ten under TSan.
TEST(MpscQueueStressTest, RepeatedParkWakeCyclesNeverLoseWakeup) {
  MpscQueue<int> q;
  constexpr int kCycles = 4000;
  std::thread consumer([&] {
    for (int i = 0; i < kCycles; ++i) {
      auto v = q.PopWait();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
  });
  for (int i = 0; i < kCycles; ++i) {
    q.Push(i);
    if ((i & 63) == 0) {
      std::this_thread::yield();  // let the consumer drain and re-park
    }
  }
  consumer.join();
}

TEST(MpscQueueTest, NodeRecyclingSurvivesManyCycles) {
  // Push/pop far more values than the freelist capacity: exercises both the
  // recycled path and the heap-fallback path.
  MpscQueue<std::string> q(/*free_list_capacity=*/8);
  for (int round = 0; round < 1000; ++round) {
    q.Push("value-" + std::to_string(round));
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "value-" + std::to_string(round));
  }
}

TEST(MpscQueueTest, DestructorReleasesQueuedValues) {
  auto counter = std::make_shared<int>(0);
  {
    MpscQueue<std::shared_ptr<int>> q;
    for (int i = 0; i < 10; ++i) {
      q.Push(counter);
    }
    // Queue destroyed with 10 values still queued.
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// Multi-producer: values from each producer arrive in that producer's order,
// and nothing is lost or duplicated. Runs under TSan via the tsan preset
// (suite name matches the Mpsc filter).
TEST(MpscQueueStressTest, MultiProducerNoLossPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscQueue<uint64_t> q;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t v = (static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(i);
        ASSERT_TRUE(q.Push(v));
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    auto v = q.PopWait();
    ASSERT_TRUE(v.has_value());
    const int producer = static_cast<int>(*v >> 32);
    const int seq = static_cast<int>(*v & 0xffffffffu);
    ASSERT_LT(producer, kProducers);
    EXPECT_EQ(seq, next_expected[producer]) << "producer " << producer;
    next_expected[producer] = seq + 1;
    ++received;
  }
  EXPECT_FALSE(q.TryPop().has_value());

  for (auto& t : producers) {
    t.join();
  }
}

// Producers race Close(): every PopWait either yields a pushed value or the
// closed sentinel; the drain after close loses nothing that Push accepted.
TEST(MpscQueueStressTest, CloseRacesProducers) {
  for (int round = 0; round < 20; ++round) {
    MpscQueue<int> q;
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          if (q.Push(i)) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread closer([&] { q.Close(); });

    int drained = 0;
    while (q.PopWait().has_value()) {
      ++drained;
    }
    for (auto& t : producers) {
      t.join();
    }
    closer.join();
    // Push() increments accepted before any later pop can run dry post-close,
    // so a final sweep catches stragglers.
    while (q.TryPop().has_value()) {
      ++drained;
    }
    EXPECT_EQ(drained, accepted.load());
  }
}

TEST(MpscQueueStressTest, BoundedFreeListConcurrentRecycle) {
  // Hammer the freelist from both sides through the queue: producers push
  // (acquire nodes) while the consumer pops (release nodes).
  MpscQueue<int> q(/*free_list_capacity=*/16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        q.Push(1);
      }
    });
  }
  int popped = 0;
  while (popped < 50000) {
    if (q.TryPop().has_value()) {
      ++popped;
    }
  }
  stop.store(true);
  for (auto& t : producers) {
    t.join();
  }
  while (q.TryPop().has_value()) {
  }
}

}  // namespace
}  // namespace antipode
