#include "src/common/small_vector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace antipode {
namespace {

TEST(SmallVectorTest, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.inline_storage());
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.inline_storage());
  v.push_back(4);
  EXPECT_FALSE(v.inline_storage());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(SmallVectorTest, InsertKeepsSortedOrder) {
  SmallVector<int, 2> v;
  for (int x : {9, 3, 7, 1, 5}) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    v.insert(it, x);
  }
  const std::vector<int> got(v.begin(), v.end());
  EXPECT_EQ(got, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(SmallVectorTest, EraseSingleAndRange) {
  SmallVector<std::string, 3> v;
  for (const char* s : {"a", "b", "c", "d", "e"}) {
    v.push_back(s);
  }
  v.erase(v.begin() + 1);  // drop "b"
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[1], "c");
  v.erase(v.begin() + 1, v.begin() + 3);  // drop "c", "d"
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "e");
}

TEST(SmallVectorTest, CopyAndMoveBothStorageModes) {
  SmallVector<std::string, 2> inline_v;
  inline_v.push_back("x");
  SmallVector<std::string, 2> inline_copy(inline_v);
  EXPECT_EQ(inline_copy, inline_v);
  EXPECT_TRUE(inline_copy.inline_storage());

  SmallVector<std::string, 2> heap_v;
  for (const char* s : {"a", "b", "c", "d"}) {
    heap_v.push_back(s);
  }
  SmallVector<std::string, 2> heap_copy(heap_v);
  EXPECT_EQ(heap_copy, heap_v);

  SmallVector<std::string, 2> moved(std::move(heap_v));
  EXPECT_EQ(moved, heap_copy);
  EXPECT_TRUE(heap_v.empty());  // NOLINT(bugprone-use-after-move)

  SmallVector<std::string, 2> moved_inline(std::move(inline_v));
  EXPECT_EQ(moved_inline.size(), 1u);
  EXPECT_EQ(moved_inline[0], "x");

  moved = heap_copy;  // copy-assign over heap storage
  EXPECT_EQ(moved, heap_copy);
  moved_inline = std::move(moved);  // move-assign heap into inline
  EXPECT_EQ(moved_inline.size(), 4u);
}

TEST(SmallVectorTest, ReserveAndClear) {
  SmallVector<int, 2> v;
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 50; ++i) {
    v.push_back(i);
  }
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(7);
  EXPECT_EQ(v.back(), 7);
}

TEST(SmallVectorTest, InsertRange) {
  SmallVector<int, 2> v;
  v.push_back(1);
  v.push_back(5);
  const std::vector<int> mid{2, 3, 4};
  v.insert(v.begin() + 1, mid.begin(), mid.end());
  const std::vector<int> got(v.begin(), v.end());
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace antipode
