// Source audit: all wall-clock and entropy reads in src/ must flow through
// the sanctioned indirection points (src/common/clock.* for time,
// src/common/random.* for randomness, src/common/sim.* which anchors the
// virtual-time origin). Any other direct use of steady_clock::now /
// system_clock::now / std::random_device would silently escape simulation
// mode and break seed-replay determinism.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace antipode {
namespace {

namespace fs = std::filesystem;

// tests/common/clock_audit_test.cc -> repo root is three levels up.
fs::path RepoRoot() { return fs::path(__FILE__).parent_path().parent_path().parent_path(); }

bool IsAllowed(const fs::path& file) {
  static const std::vector<std::string> kAllowed = {
      "clock.h", "clock.cc", "random.h", "random.cc", "sim.h", "sim.cc",
  };
  if (file.parent_path().filename() != "common") {
    return false;
  }
  const std::string name = file.filename().string();
  for (const auto& allowed : kAllowed) {
    if (name == allowed) return true;
  }
  return false;
}

TEST(ClockAuditTest, NoDirectWallClockOrEntropyOutsideClockAndRandom) {
  const fs::path src = RepoRoot() / "src";
  ASSERT_TRUE(fs::is_directory(src)) << "source tree not found at " << src
                                     << " (out-of-tree build without sources?)";

  const std::vector<std::string> kForbidden = {
      "steady_clock::now",
      "system_clock::now",
      "random_device",
  };

  std::vector<std::string> offenders;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const std::string ext = path.extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    if (IsAllowed(path)) continue;

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      for (const auto& token : kForbidden) {
        if (line.find(token) != std::string::npos) {
          offenders.push_back(path.lexically_relative(RepoRoot()).string() + ":" +
                              std::to_string(line_no) + ": " + token);
        }
      }
    }
  }

  EXPECT_TRUE(offenders.empty()) << [&] {
    std::ostringstream os;
    os << "direct wall-clock/entropy reads outside src/common/{clock,random,sim}:\n";
    for (const auto& offender : offenders) os << "  " << offender << "\n";
    os << "route time through GlobalClock() and randomness through Rng instead";
    return os.str();
  }();
}

}  // namespace
}  // namespace antipode
