#include "src/common/timer_service.h"

#include <gtest/gtest.h>

#include <atomic>

namespace antipode {
namespace {

TEST(TimerServiceTest, FiresAfterDelay) {
  TimerService timers;
  std::atomic<bool> fired{false};
  const TimePoint scheduled = SystemClock::Instance().Now();
  std::atomic<int64_t> fired_after_us{0};
  timers.ScheduleAfter(Millis(20), [&] {
    fired_after_us = ToMicros(std::chrono::duration_cast<Duration>(
        SystemClock::Instance().Now() - scheduled));
    fired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(fired.load());
  EXPECT_GE(fired_after_us.load(), 19000);
  timers.Shutdown();
}

TEST(TimerServiceTest, ZeroDelayFiresPromptly) {
  TimerService timers;
  std::atomic<bool> fired{false};
  timers.ScheduleAfter(Micros(0), [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(fired.load());
  timers.Shutdown();
}

TEST(TimerServiceTest, FiresInDeadlineOrder) {
  TimerService timers;
  std::mutex mu;
  std::vector<int> order;
  timers.ScheduleAfter(Millis(60), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(3);
  });
  timers.ScheduleAfter(Millis(20), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  timers.ScheduleAfter(Millis(40), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
  timers.Shutdown();
}

TEST(TimerServiceTest, EqualDeadlinesFireFifo) {
  TimerService timers;
  const TimePoint when = SystemClock::Instance().Now() + Millis(20);
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    timers.ScheduleAt(when, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  }
  timers.Shutdown();
}

TEST(TimerServiceTest, ManyConcurrentTimers) {
  TimerService timers;
  std::atomic<int> fired{0};
  for (int i = 0; i < 1000; ++i) {
    timers.ScheduleAfter(Millis(1 + i % 20), [&] { fired.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() < 1000 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1000);
  timers.Shutdown();
}

TEST(TimerServiceTest, ShutdownDropsFutureTimers) {
  TimerService timers;
  std::atomic<bool> fired{false};
  timers.ScheduleAfter(std::chrono::duration_cast<Duration>(std::chrono::seconds(60)),
                       [&] { fired = true; });
  timers.Shutdown();
  EXPECT_FALSE(fired.load());
}

TEST(TimerServiceTest, ScheduleAfterShutdownIsNoOp) {
  TimerService timers;
  timers.Shutdown();
  std::atomic<bool> fired{false};
  timers.ScheduleAfter(Micros(1), [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fired.load());
}

TEST(TimerServiceTest, PendingCountTracksQueue) {
  TimerService timers;
  EXPECT_EQ(timers.PendingCount(), 0u);
  timers.ScheduleAfter(std::chrono::duration_cast<Duration>(std::chrono::seconds(60)), [] {});
  EXPECT_EQ(timers.PendingCount(), 1u);
  timers.Shutdown();
}

TEST(TimerServiceTest, SharedInstanceIsSingleton) {
  EXPECT_EQ(&TimerService::Shared(), &TimerService::Shared());
}

}  // namespace
}  // namespace antipode
