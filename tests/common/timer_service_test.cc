#include "src/common/timer_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace antipode {
namespace {

TEST(TimerServiceTest, FiresAfterDelay) {
  TimerService timers;
  std::atomic<bool> fired{false};
  const TimePoint scheduled = SystemClock::Instance().Now();
  std::atomic<int64_t> fired_after_us{0};
  timers.ScheduleAfter(Millis(20), [&] {
    fired_after_us = ToMicros(std::chrono::duration_cast<Duration>(
        SystemClock::Instance().Now() - scheduled));
    fired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(fired.load());
  EXPECT_GE(fired_after_us.load(), 19000);
  timers.Shutdown();
}

TEST(TimerServiceTest, ZeroDelayFiresPromptly) {
  TimerService timers;
  std::atomic<bool> fired{false};
  timers.ScheduleAfter(Micros(0), [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(fired.load());
  timers.Shutdown();
}

TEST(TimerServiceTest, FiresInDeadlineOrder) {
  TimerService timers;
  std::mutex mu;
  std::vector<int> order;
  timers.ScheduleAfter(Millis(60), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(3);
  });
  timers.ScheduleAfter(Millis(20), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  timers.ScheduleAfter(Millis(40), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
  timers.Shutdown();
}

// Equal-deadline FIFO is a per-affinity-token guarantee: entries sharing a
// token fire in schedule order; default (round-robin) tokens promise nothing
// across calls.
TEST(TimerServiceTest, EqualDeadlinesFireFifoPerAffinity) {
  TimerService timers;
  const TimePoint when = SystemClock::Instance().Now() + Millis(20);
  constexpr TimerService::AffinityToken kToken = 42;
  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    timers.ScheduleAt(when, kToken, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  }
  timers.Shutdown();
}

// Two interleaved affinity streams with one shared deadline: each stream's
// callbacks run in its own schedule order even though the streams themselves
// may interleave arbitrarily (different shards/workers).
TEST(TimerServiceTest, InterleavedAffinityStreamsKeepPerTokenOrder) {
  TimerService timers(TimerServiceOptions{.num_shards = 4, .num_workers = 4});
  // Already due: Shutdown below must still fire every one of them.
  const TimePoint when = SystemClock::Instance().Now();
  constexpr int kPerStream = 100;
  std::mutex mu;
  std::vector<int> stream_a;
  std::vector<int> stream_b;
  for (int i = 0; i < kPerStream; ++i) {
    timers.ScheduleAt(when, /*affinity=*/1, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      stream_a.push_back(i);
    });
    timers.ScheduleAt(when, /*affinity=*/2, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      stream_b.push_back(i);
    });
  }
  timers.Shutdown();  // due timers still fire before Shutdown returns
  ASSERT_EQ(stream_a.size(), static_cast<size_t>(kPerStream));
  ASSERT_EQ(stream_b.size(), static_cast<size_t>(kPerStream));
  for (int i = 0; i < kPerStream; ++i) {
    EXPECT_EQ(stream_a[static_cast<size_t>(i)], i);
    EXPECT_EQ(stream_b[static_cast<size_t>(i)], i);
  }
}

// Callback execution is decoupled from dispatch: two due callbacks must be
// able to run at the same time. Each callback blocks until the other has
// started; a serial engine would deadlock-then-timeout on the first.
TEST(TimerServiceTest, ShardParallelDispatch) {
  TimerService timers(TimerServiceOptions{.num_shards = 4, .num_workers = 4});
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  std::atomic<int> overlapped{0};
  for (int i = 0; i < 2; ++i) {
    // Distinct affinity tokens route to distinct workers.
    timers.ScheduleAfter(Micros(0), static_cast<TimerService::AffinityToken>(i), [&] {
      std::unique_lock<std::mutex> lock(mu);
      ++started;
      cv.notify_all();
      if (cv.wait_for(lock, std::chrono::seconds(5), [&] { return started == 2; })) {
        overlapped.fetch_add(1);
      }
    });
  }
  timers.Shutdown();
  EXPECT_EQ(overlapped.load(), 2) << "due callbacks on different shards did not overlap";
}

// Shutdown lets already-due callbacks run to completion (and drops only the
// not-yet-due), even when they were dispatched microseconds earlier.
TEST(TimerServiceTest, ShutdownWithDueTimersStillFires) {
  TimerService timers(TimerServiceOptions{.num_shards = 4, .num_workers = 2});
  std::atomic<int> fired{0};
  constexpr int kDue = 200;
  for (int i = 0; i < kDue; ++i) {
    timers.ScheduleAfter(Micros(0), [&] { fired.fetch_add(1); });
  }
  timers.ScheduleAfter(std::chrono::duration_cast<Duration>(std::chrono::seconds(60)),
                       [&] { fired.fetch_add(1000); });
  timers.Shutdown();
  EXPECT_EQ(fired.load(), kDue);
}

TEST(TimerServiceTest, InlineModeRunsCallbacksOnDispatcher) {
  // num_workers = 0 reproduces the legacy engine: callbacks inline on the
  // (single) shard dispatcher, globally serialized.
  TimerService timers(TimerServiceOptions{.num_shards = 1, .num_workers = 0});
  EXPECT_EQ(timers.num_workers(), 0u);
  std::atomic<int> fired{0};
  for (int i = 0; i < 100; ++i) {
    timers.ScheduleAfter(Micros(0), [&] { fired.fetch_add(1); });
  }
  timers.Shutdown();
  EXPECT_EQ(fired.load(), 100);
}

// TSan target: schedulers racing Shutdown must not corrupt the engine, and
// every accepted callback (ScheduleAfter returned true) must still run if it
// was due. Named *Stress* so the tsan ctest preset picks it up.
TEST(TimerServiceStressTest, ConcurrentScheduleAndShutdown) {
  for (int round = 0; round < 5; ++round) {
    TimerService timers(TimerServiceOptions{.num_shards = 4, .num_workers = 4});
    std::atomic<int> accepted{0};
    std::atomic<int> fired{0};
    std::vector<std::thread> schedulers;
    for (int t = 0; t < 4; ++t) {
      schedulers.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          if (timers.ScheduleAfter(Micros(0), [&] { fired.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    std::thread stopper([&] { timers.Shutdown(); });
    for (auto& thread : schedulers) {
      thread.join();
    }
    stopper.join();
    timers.Shutdown();  // idempotent
    EXPECT_EQ(fired.load(), accepted.load());
  }
}

TEST(TimerServiceTest, ManyConcurrentTimers) {
  TimerService timers;
  std::atomic<int> fired{0};
  for (int i = 0; i < 1000; ++i) {
    timers.ScheduleAfter(Millis(1 + i % 20), [&] { fired.fetch_add(1); });
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fired.load() < 1000 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fired.load(), 1000);
  timers.Shutdown();
}

TEST(TimerServiceTest, ShutdownDropsFutureTimers) {
  TimerService timers;
  std::atomic<bool> fired{false};
  timers.ScheduleAfter(std::chrono::duration_cast<Duration>(std::chrono::seconds(60)),
                       [&] { fired = true; });
  timers.Shutdown();
  EXPECT_FALSE(fired.load());
}

TEST(TimerServiceTest, ScheduleAfterShutdownIsNoOp) {
  TimerService timers;
  timers.Shutdown();
  std::atomic<bool> fired{false};
  timers.ScheduleAfter(Micros(1), [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fired.load());
}

TEST(TimerServiceTest, PendingCountTracksQueue) {
  TimerService timers;
  EXPECT_EQ(timers.PendingCount(), 0u);
  timers.ScheduleAfter(std::chrono::duration_cast<Duration>(std::chrono::seconds(60)), [] {});
  EXPECT_EQ(timers.PendingCount(), 1u);
  timers.Shutdown();
}

TEST(TimerServiceTest, SharedInstanceIsSingleton) {
  EXPECT_EQ(&TimerService::Shared(), &TimerService::Shared());
}

}  // namespace
}  // namespace antipode
