#include "src/common/status.h"

#include <gtest/gtest.h>

namespace antipode {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing key").message(), "missing key");
}

TEST(StatusTest, NonOkToStringIncludesCodeAndMessage) {
  Status status = Status::NotFound("key k1");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: key k1");
  EXPECT_FALSE(status.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("gone"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBackOnError) {
  Result<int> error(Status::Internal("boom"));
  EXPECT_EQ(error.value_or(42), 42);
  Result<int> value(3);
  EXPECT_EQ(value.value_or(42), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace antipode
