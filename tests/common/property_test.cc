// PropertyRegistry / ALWAYS / SOMETIMES / REACHABLE unit tests.
//
// The registry is process-wide, so these tests use uniquely-named properties
// and assert deltas rather than absolute registry state (other suites in the
// same binary may register their own properties).

#include "src/common/property.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace antipode {
namespace {

TEST(PropertyTest, RegisterIsIdempotentByName) {
  auto& reg = PropertyRegistry::Instance();
  Property* a = reg.Register(PropertyKind::kAlways, "prop_test.idempotent");
  Property* b = reg.Register(PropertyKind::kAlways, "prop_test.idempotent");
  EXPECT_EQ(a, b);
  // The first registration fixes the kind.
  Property* c = reg.Register(PropertyKind::kSometimes, "prop_test.idempotent");
  EXPECT_EQ(a, c);
  EXPECT_EQ(c->kind(), PropertyKind::kAlways);
  EXPECT_EQ(reg.Find("prop_test.idempotent"), a);
  EXPECT_EQ(reg.Find("prop_test.never_registered"), nullptr);
}

TEST(PropertyTest, ObserveCountsPassAndFail) {
  auto& reg = PropertyRegistry::Instance();
  Property* p = reg.Register(PropertyKind::kAlways, "prop_test.counts");
  const uint64_t pass0 = p->total_passes();
  const uint64_t fail0 = p->total_failures();
  p->Observe(true);
  p->Observe(true);
  p->Observe(false);
  EXPECT_EQ(p->total_passes(), pass0 + 2);
  EXPECT_EQ(p->total_failures(), fail0 + 1);
}

TEST(PropertyTest, LazyDetailOnlyMaterializedOnFailure) {
  auto& reg = PropertyRegistry::Instance();
  Property* p = reg.Register(PropertyKind::kAlways, "prop_test.detail");
  int built = 0;
  p->Observe(true, [&] {
    ++built;
    return std::string("should not run");
  });
  EXPECT_EQ(built, 0);
  p->Observe(false, [&] {
    ++built;
    return std::string("first failure context");
  });
  EXPECT_EQ(built, 1);
  EXPECT_EQ(p->first_failure_detail(), "first failure context");
  // Only the first failure's detail is kept.
  p->Observe(false, [&] {
    ++built;
    return std::string("second failure context");
  });
  EXPECT_EQ(p->first_failure_detail(), "first failure context");
}

TEST(PropertyTest, BeginRunResetsRunCountersButNotTotals) {
  auto& reg = PropertyRegistry::Instance();
  Property* p = reg.Register(PropertyKind::kAlways, "prop_test.runs");
  p->Observe(false);
  EXPECT_GE(p->run_failures(), 1u);
  EXPECT_FALSE(reg.RunViolationFree());
  const uint64_t totals = p->total_failures();

  const uint64_t run = reg.BeginRun();
  EXPECT_EQ(reg.run_id(), run);
  EXPECT_EQ(p->run_failures(), 0u);
  EXPECT_EQ(p->run_passes(), 0u);
  EXPECT_EQ(p->total_failures(), totals);
  EXPECT_TRUE(reg.RunViolationFree());
  p->Observe(true);
  EXPECT_TRUE(reg.RunViolationFree());
}

TEST(PropertyTest, UnreachedSometimesListsNeverTrueProperties) {
  auto& reg = PropertyRegistry::Instance();
  Property* never = reg.Register(PropertyKind::kSometimes, "prop_test.never_true");
  never->Observe(false);
  Property* hit = reg.Register(PropertyKind::kSometimes, "prop_test.eventually_true");
  hit->Observe(false);
  hit->Observe(true);
  reg.Register(PropertyKind::kReachable, "prop_test.reached")->Observe(true);

  const auto unreached = reg.UnreachedSometimes();
  auto contains = [&](const std::string& name) {
    for (const auto& n : unreached) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("prop_test.never_true"));
  EXPECT_FALSE(contains("prop_test.eventually_true"));
  EXPECT_FALSE(contains("prop_test.reached"));
  // ALWAYS properties are not reachability goals.
  EXPECT_FALSE(contains("prop_test.counts"));
}

TEST(PropertyTest, MacrosRegisterObserveAndCacheTheProperty) {
  auto& reg = PropertyRegistry::Instance();
  for (int i = 0; i < 3; ++i) {
    ANTIPODE_ALWAYS("prop_test.macro_always", i < 2);
    ANTIPODE_SOMETIMES("prop_test.macro_sometimes", i == 1);
    ANTIPODE_REACHABLE("prop_test.macro_reachable");
  }
  Property* always = reg.Find("prop_test.macro_always");
  ASSERT_NE(always, nullptr);
  EXPECT_EQ(always->kind(), PropertyKind::kAlways);
  EXPECT_EQ(always->total_passes(), 2u);
  EXPECT_EQ(always->total_failures(), 1u);

  Property* sometimes = reg.Find("prop_test.macro_sometimes");
  ASSERT_NE(sometimes, nullptr);
  EXPECT_EQ(sometimes->kind(), PropertyKind::kSometimes);
  EXPECT_EQ(sometimes->total_passes(), 1u);

  Property* reachable = reg.Find("prop_test.macro_reachable");
  ASSERT_NE(reachable, nullptr);
  EXPECT_EQ(reachable->kind(), PropertyKind::kReachable);
  EXPECT_EQ(reachable->total_passes(), 3u);
  EXPECT_EQ(reachable->total_failures(), 0u);
}

TEST(PropertyTest, AlwaysMacroWithLazyDetail) {
  ANTIPODE_ALWAYS("prop_test.macro_detail", false, [] {
    return std::string("macro detail payload");
  });
  Property* p = PropertyRegistry::Instance().Find("prop_test.macro_detail");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->first_failure_detail(), "macro detail payload");
}

TEST(PropertyTest, SnapshotIsSortedAndCarriesCounts) {
  auto& reg = PropertyRegistry::Instance();
  reg.Register(PropertyKind::kAlways, "prop_test.snap_b")->Observe(true);
  reg.Register(PropertyKind::kAlways, "prop_test.snap_a")->Observe(false);
  const auto snap = reg.Snapshot();
  ASSERT_GE(snap.size(), 2u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  bool saw_a = false;
  for (const auto& state : snap) {
    if (state.name == "prop_test.snap_a") {
      saw_a = true;
      EXPECT_EQ(state.kind, PropertyKind::kAlways);
      EXPECT_GE(state.total_failures, 1u);
    }
  }
  EXPECT_TRUE(saw_a);
}

TEST(PropertyTest, PrintSummaryMentionsEveryProperty) {
  auto& reg = PropertyRegistry::Instance();
  reg.Register(PropertyKind::kSometimes, "prop_test.summary_prop")->Observe(true);
  std::ostringstream os;
  reg.PrintSummary(os);
  EXPECT_NE(os.str().find("prop_test.summary_prop"), std::string::npos);
  EXPECT_NE(os.str().find("SOMETIMES"), std::string::npos);
}

TEST(PropertyTest, DeepChecksToggle) {
  auto& reg = PropertyRegistry::Instance();
  EXPECT_FALSE(reg.deep_checks());
  reg.set_deep_checks(true);
  EXPECT_TRUE(reg.deep_checks());
  reg.set_deep_checks(false);
  EXPECT_FALSE(reg.deep_checks());
}

}  // namespace
}  // namespace antipode
