// Deterministic simulation scheduler tests: virtual time, seeded schedule
// exploration, replayable trace hashes, cooperative blocking, and the
// deterministic TimerService / ThreadPool engines built on top.

#include "src/common/sim.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/thread_pool.h"
#include "src/common/timer_service.h"

namespace antipode {
namespace {

TimerServiceOptions DeterministicTimers() {
  TimerServiceOptions options;
  options.deterministic = true;
  return options;
}

TEST(SimSchedulerTest, RunsEventsInDeadlineOrderAndAdvancesVirtualTime) {
  ScopedSimMode sim(1);
  SimScheduler& sched = sim.scheduler();
  const TimePoint start = sched.Now();

  std::vector<int> order;
  sched.Post(start + std::chrono::milliseconds(30), 7, [&] { order.push_back(3); });
  sched.Post(start + std::chrono::milliseconds(10), 7, [&] { order.push_back(1); });
  sched.Post(start + std::chrono::milliseconds(20), 7, [&] { order.push_back(2); });
  EXPECT_EQ(sched.PendingEvents(), 3u);

  EXPECT_EQ(sched.RunUntilQuiescent(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), start + std::chrono::milliseconds(30));
  EXPECT_EQ(sched.events_run(), 3u);
}

TEST(SimSchedulerTest, SameAffinityIsFifoAtEqualDeadlines) {
  ScopedSimMode sim(99);
  SimScheduler& sched = sim.scheduler();
  const TimePoint when = sched.Now() + std::chrono::milliseconds(5);

  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sched.Post(when, /*affinity=*/42, [&order, i] { order.push_back(i); });
  }
  sched.RunUntilQuiescent();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

// Distinct affinity tokens at one deadline run in a per-seed order; that
// permutation (captured by the trace hash) is what a seed sweep explores.
TEST(SimSchedulerTest, SeedControlsEqualDeadlineInterleaving) {
  auto run_episode = [](uint64_t seed, std::vector<int>* order) {
    ScopedSimMode sim(seed);
    SimScheduler& sched = sim.scheduler();
    const TimePoint when = sched.Now() + std::chrono::milliseconds(5);
    for (int i = 0; i < 8; ++i) {
      sched.Post(when, /*affinity=*/1000 + i, [order, i] { order->push_back(i); });
    }
    sched.RunUntilQuiescent();
    return sim.scheduler().TraceHash();
  };

  std::vector<int> order_a1, order_a2, order_b;
  const uint64_t hash_a1 = run_episode(7, &order_a1);
  const uint64_t hash_a2 = run_episode(7, &order_a2);
  const uint64_t hash_b = run_episode(8, &order_b);

  EXPECT_EQ(order_a1, order_a2);
  EXPECT_EQ(hash_a1, hash_a2);
  EXPECT_NE(hash_a1, hash_b);  // tie values fold the seed, so hashes must differ
}

TEST(SimSchedulerTest, TraceHashIdenticalAcrossThreeRunsOfOneSeed) {
  auto run_episode = [](uint64_t seed) {
    ScopedSimMode sim(seed);
    SimScheduler& sched = sim.scheduler();
    TimerService timers(DeterministicTimers());
    int fired = 0;
    // A timer that reschedules itself builds a long deterministic chain.
    TimerTask tick = [&] {
      if (++fired < 50) {
        timers.ScheduleAfter(std::chrono::milliseconds(fired % 7 + 1),
                             /*affinity=*/fired % 3, [&] {});
      }
    };
    for (int i = 0; i < 20; ++i) {
      timers.ScheduleAfter(std::chrono::milliseconds(i % 5), /*affinity=*/i % 4,
                           [&] { tick(); });
    }
    sched.RunUntilQuiescent();
    timers.Shutdown();
    return sched.TraceHash();
  };

  const uint64_t h1 = run_episode(1234);
  const uint64_t h2 = run_episode(1234);
  const uint64_t h3 = run_episode(1234);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2, h3);
  EXPECT_NE(h1, run_episode(1235));
}

TEST(SimSchedulerTest, RunUntilPumpsUntilPredicateHolds) {
  ScopedSimMode sim(3);
  SimScheduler& sched = sim.scheduler();
  bool done = false;
  sched.Post(sched.Now() + std::chrono::milliseconds(40), 1, [&] { done = true; });
  sched.Post(sched.Now() + std::chrono::milliseconds(10), 1, [] {});

  EXPECT_TRUE(sched.RunUntil([&] { return done; }, TimePoint::max()));
  EXPECT_TRUE(done);
}

TEST(SimSchedulerTest, RunUntilTimeoutAdvancesToDeadline) {
  ScopedSimMode sim(3);
  SimScheduler& sched = sim.scheduler();
  bool done = false;
  const TimePoint deadline = sched.Now() + std::chrono::milliseconds(20);
  sched.Post(sched.Now() + std::chrono::milliseconds(50), 1, [&] { done = true; });

  EXPECT_FALSE(sched.RunUntil([&] { return done; }, deadline));
  EXPECT_FALSE(done);
  // Virtual time sits exactly at the deadline; the late event is still queued.
  EXPECT_EQ(sched.Now(), deadline);
  EXPECT_EQ(sched.PendingEvents(), 1u);
}

// Quiescent heap + unsatisfied predicate + no deadline = deadlock: RunUntil
// reports it by returning false *without* advancing time (there is no
// deadline to advance to).
TEST(SimSchedulerTest, RunUntilDetectsDeadlockWithoutAdvancing) {
  ScopedSimMode sim(3);
  SimScheduler& sched = sim.scheduler();
  const TimePoint before = sched.Now();
  EXPECT_FALSE(sched.RunUntil([] { return false; }, TimePoint::max()));
  EXPECT_EQ(sched.Now(), before);
}

TEST(SimSchedulerTest, SimClockSleepRunsDueEventsAndAdvances) {
  ScopedSimMode sim(4);
  SimScheduler& sched = sim.scheduler();
  bool fired = false;
  sched.Post(sched.Now() + std::chrono::milliseconds(5), 1, [&] { fired = true; });

  const TimePoint before = sched.Now();
  GlobalClock().SleepFor(std::chrono::milliseconds(10));
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.Now(), before + std::chrono::milliseconds(10));
}

// The point of the whole exercise: hours of virtual time cost only the
// callbacks. Also the satellite guarantee that sim runs never advance the
// real clock by more than incidental CPU time.
TEST(SimSchedulerTest, VirtualHoursCostNoWallClock) {
  const auto wall_start = std::chrono::steady_clock::now();
  ScopedSimMode sim(5);
  SimScheduler& sched = sim.scheduler();
  TimerService timers(DeterministicTimers());
  const TimePoint virtual_start = sched.Now();

  int fired = 0;
  for (int i = 1; i <= 1000; ++i) {
    timers.ScheduleAfter(std::chrono::seconds(i * 10), [&] { ++fired; });
  }
  sched.RunUntilQuiescent();
  timers.Shutdown();

  EXPECT_EQ(fired, 1000);
  // ~2.8 virtual hours elapsed...
  EXPECT_GE(sched.Now() - virtual_start, std::chrono::seconds(10000));
  // ...in well under real-time (generous bound for loaded CI machines).
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;
  EXPECT_LT(wall_elapsed, std::chrono::seconds(30));
}

TEST(SimSchedulerTest, ActiveAndGlobalClockAreScopedAndRestored) {
  EXPECT_EQ(SimScheduler::Active(), nullptr);
  Clock* const real = &GlobalClock();
  {
    ScopedSimMode outer(1);
    EXPECT_EQ(SimScheduler::Active(), &outer.scheduler());
    {
      ScopedSimMode inner(2);
      EXPECT_EQ(SimScheduler::Active(), &inner.scheduler());
    }
    EXPECT_EQ(SimScheduler::Active(), &outer.scheduler());
  }
  EXPECT_EQ(SimScheduler::Active(), nullptr);
  EXPECT_EQ(&GlobalClock(), real);
}

TEST(SimSchedulerTest, NextCallIdIsPerSchedulerAndSequential) {
  ScopedSimMode sim(6);
  EXPECT_EQ(sim.scheduler().NextCallId(), 1u);
  EXPECT_EQ(sim.scheduler().NextCallId(), 2u);
  ScopedSimMode fresh(6);
  EXPECT_EQ(fresh.scheduler().NextCallId(), 1u);
}

TEST(SimSchedulerTest, ExecutorAffinityAssignedInFirstUseOrder) {
  ScopedSimMode sim(7);
  int a = 0, b = 0;
  const uint64_t token_a = sim.scheduler().ExecutorAffinity(&a);
  const uint64_t token_b = sim.scheduler().ExecutorAffinity(&b);
  EXPECT_NE(token_a, token_b);
  EXPECT_EQ(sim.scheduler().ExecutorAffinity(&a), token_a);

  // A fresh scheduler hands the same first-use-order tokens to different
  // addresses — ASLR cannot perturb schedules.
  ScopedSimMode fresh(7);
  int c = 0;
  EXPECT_EQ(fresh.scheduler().ExecutorAffinity(&c), token_a);
}

TEST(SimTimerServiceTest, DeterministicModeFiresAtVirtualDeadlines) {
  ScopedSimMode sim(11);
  SimScheduler& sched = sim.scheduler();
  TimerService timers(DeterministicTimers());
  EXPECT_TRUE(timers.deterministic());

  std::vector<int> order;
  TimePoint fire_time{};
  EXPECT_TRUE(timers.ScheduleAfter(std::chrono::milliseconds(20), [&] {
    order.push_back(2);
    fire_time = GlobalClock().Now();
  }));
  EXPECT_TRUE(timers.ScheduleAfter(std::chrono::milliseconds(10), [&] { order.push_back(1); }));
  EXPECT_EQ(timers.PendingCount(), 2u);

  const TimePoint start = sched.Now();
  sched.RunUntilQuiescent();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(fire_time, start + std::chrono::milliseconds(20));
  EXPECT_EQ(timers.PendingCount(), 0u);
  timers.Shutdown();
}

TEST(SimTimerServiceTest, ShutdownFiresDueTimersAndDropsFutureOnes) {
  ScopedSimMode sim(12);
  SimScheduler& sched = sim.scheduler();
  TimerService timers(DeterministicTimers());

  bool due_fired = false;
  bool future_fired = false;
  EXPECT_TRUE(timers.ScheduleAt(sched.Now(), [&] { due_fired = true; }));
  EXPECT_TRUE(
      timers.ScheduleAfter(std::chrono::seconds(5), [&] { future_fired = true; }));

  timers.Shutdown();
  EXPECT_TRUE(due_fired);  // already due: fires before Shutdown returns

  // The future event may still sit in the scheduler heap, but its service is
  // closed: pumping must not run its callback.
  sched.RunUntilQuiescent();
  EXPECT_FALSE(future_fired);
}

// Regression test for callers ignoring the post-Shutdown `false`: in sim mode
// the rejection is visible and nothing is enqueued for the dropped task.
TEST(SimTimerServiceTest, ScheduleAfterShutdownReturnsFalseAndNeverRuns) {
  ScopedSimMode sim(13);
  SimScheduler& sched = sim.scheduler();
  TimerService timers(DeterministicTimers());
  timers.Shutdown();

  bool ran = false;
  EXPECT_FALSE(timers.ScheduleAfter(std::chrono::milliseconds(1), [&] { ran = true; }));
  EXPECT_FALSE(timers.ScheduleAt(sched.Now(), [&] { ran = true; }));
  EXPECT_EQ(timers.PendingCount(), 0u);
  sched.RunUntilQuiescent();
  EXPECT_FALSE(ran);
}

TEST(SimThreadPoolTest, SubmitRunsSeriallyInSubmissionOrder) {
  ScopedSimMode sim(21);
  SimScheduler& sched = sim.scheduler();
  ThreadPool pool(4);

  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(pool.Submit([&order, i] { order.push_back(i); }));
  }
  // Nothing runs until the driver pumps: sim mode has no worker threads.
  EXPECT_TRUE(order.empty());
  sched.RunUntilQuiescent();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  pool.Shutdown();
}

TEST(SimThreadPoolTest, ShutdownDrainsPendingSimTasks) {
  ScopedSimMode sim(22);
  ThreadPool pool(2);
  int ran = 0;
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] { ++ran; });
  }
  pool.Shutdown();  // pumps the scheduler until the pool's tasks drained
  EXPECT_EQ(ran, 4);
  EXPECT_FALSE(pool.Submit([&] { ++ran; }));
  EXPECT_EQ(ran, 4);
}

}  // namespace
}  // namespace antipode
