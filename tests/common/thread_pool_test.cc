#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace antipode {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2, "test");
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  ThreadPool pool(1, "drain");
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      count.fetch_add(1);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1, "closed");
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2, "twice");
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
}

TEST(ThreadPoolTest, DestructorShutsDown) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, "dtor");
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ParallelismUsesMultipleThreads) {
  ThreadPool pool(4, "parallel");
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> remaining{16};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      remaining.fetch_sub(1);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(remaining.load(), 0);
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, NameAndSizeAccessors) {
  ThreadPool pool(3, "named");
  EXPECT_EQ(pool.name(), "named");
  EXPECT_EQ(pool.num_threads(), 3u);
  pool.Shutdown();
}

}  // namespace
}  // namespace antipode
