#include "src/common/small_function.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <utility>

namespace antipode {
namespace {

TEST(SmallFunctionTest, EmptyIsFalse) {
  TimerTask task;
  EXPECT_FALSE(static_cast<bool>(task));
}

TEST(SmallFunctionTest, InvokesSmallLambdaInline) {
  int calls = 0;
  TimerTask task([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(task));
  EXPECT_TRUE(task.is_inline());
  task();
  task();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFunctionTest, LargeCaptureSpillsToHeapAndStillWorks) {
  std::array<uint64_t, 32> big{};  // 256 bytes — exceeds 64-byte inline buffer
  big[31] = 99;
  int out = 0;
  TimerTask task([big, &out] { out = static_cast<int>(big[31]); });
  EXPECT_FALSE(task.is_inline());
  task();
  EXPECT_EQ(out, 99);
}

TEST(SmallFunctionTest, AcceptsMoveOnlyCallable) {
  auto ptr = std::make_unique<int>(5);
  int out = 0;
  TimerTask task([p = std::move(ptr), &out] { out = *p; });
  task();
  EXPECT_EQ(out, 5);
}

TEST(SmallFunctionTest, MoveTransfersOwnership) {
  int calls = 0;
  TimerTask a([&calls] { ++calls; });
  TimerTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): testing moved-from state
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);

  TimerTask c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(SmallFunctionTest, MoveAssignDestroysPreviousCallable) {
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  TimerTask task([keep = std::move(alive)] { (void)keep; });
  EXPECT_FALSE(watch.expired());
  task = TimerTask([] {});
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFunctionTest, DestructorReleasesCapture) {
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  {
    TimerTask task([keep = std::move(alive)] { (void)keep; });
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFunctionTest, ResetClears) {
  auto alive = std::make_shared<int>(1);
  std::weak_ptr<int> watch = alive;
  TimerTask task([keep = std::move(alive)] { (void)keep; });
  task.Reset();
  EXPECT_FALSE(static_cast<bool>(task));
  EXPECT_TRUE(watch.expired());
}

TEST(SmallFunctionTest, HeapCallableMoveIsPointerSwap) {
  std::array<char, 128> big{};
  big[0] = 'x';
  std::string out;
  SmallFunction<16> a([big, &out] { out.assign(1, big[0]); });
  EXPECT_FALSE(a.is_inline());
  SmallFunction<16> b(std::move(a));
  b();
  EXPECT_EQ(out, "x");
}

TEST(SmallFunctionTest, ShipmentSizedCaptureStaysInline) {
  // Mirrors the replication shipment lambda: this*, 8-byte handle, enum,
  // double, shared_ptr — must fit the 64-byte TimerTask buffer.
  struct FakeHandle {
    void* block;
  };
  void* self = nullptr;
  FakeHandle handle{nullptr};
  int destination = 3;
  double lag = 1.5;
  auto inflight = std::make_shared<int>(0);
  TimerTask task([self, handle, destination, lag, inflight] {
    (void)self;
    (void)handle;
    (void)destination;
    (void)lag;
    (void)inflight;
  });
  EXPECT_TRUE(task.is_inline());
}

}  // namespace
}  // namespace antipode
