#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/random.h"

namespace antipode {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_TRUE(h.Cdf().empty());
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 42.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_NEAR(h.Percentile(0.5), 42.0, 42.0 * 0.05);
}

TEST(HistogramTest, MinMaxSum) {
  Histogram h;
  h.Record(1.0);
  h.Record(100.0);
  h.Record(10.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 111.0);
  EXPECT_NEAR(h.Mean(), 37.0, 1e-9);
}

TEST(HistogramTest, PercentilesOnUniformData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(static_cast<double>(i));
  }
  EXPECT_NEAR(h.Percentile(0.5), 500.0, 500.0 * 0.05);
  EXPECT_NEAR(h.Percentile(0.9), 900.0, 900.0 * 0.05);
  EXPECT_NEAR(h.Percentile(0.99), 990.0, 990.0 * 0.05);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
}

TEST(HistogramTest, PercentileBoundsClampToObservedRange) {
  Histogram h;
  h.Record(5.0);
  h.Record(6.0);
  EXPECT_GE(h.Percentile(0.0), 5.0);
  EXPECT_LE(h.Percentile(1.0), 6.0);
}

TEST(HistogramTest, HandlesZeroAndNegativeValues) {
  Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
}

TEST(HistogramTest, WideDynamicRange) {
  Histogram h;
  h.Record(1e-4);
  h.Record(1.0);
  h.Record(1e6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.Percentile(0.01), 1e-4, 1e-4 * 0.1);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1e6);
}

TEST(HistogramTest, CdfIsMonotone) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.NextLognormal(10.0, 1.0));
  }
  double last_value = -1;
  double last_cum = 0;
  for (const auto& [value, cum] : h.Cdf()) {
    EXPECT_GT(value, last_value);
    EXPECT_GE(cum, last_cum);
    last_value = value;
    last_cum = cum;
  }
  EXPECT_NEAR(last_cum, 1.0, 1e-9);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.sum(), 103.0);
}

TEST(HistogramTest, MergeIntoEmpty) {
  Histogram a;
  Histogram b;
  b.Record(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min(), 7.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
  EXPECT_NE(h.Summary().find("p999="), std::string::npos);
}

// Nine of every thousand samples are 10x slower; p999 must land in the slow
// mode while p99 stays in the fast one — the tail the load sweep reports.
TEST(HistogramTest, P999ResolvesTailAboveP99) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) {
    h.Record(i % 1000 < 991 ? 1.0 : 10.0);
  }
  EXPECT_NEAR(h.Percentile(0.99), 1.0, 1.0 * 0.05);
  EXPECT_NEAR(h.Percentile(0.999), 10.0, 10.0 * 0.05);
}

// Values are recorded in model milliseconds; nanosecond-scale latencies
// (1 ns = 1e-6 ms) must resolve with bounded relative error rather than
// saturating the bottom bucket.
TEST(HistogramTest, NanosecondResolutionInMillisecondUnits) {
  Histogram h;
  const double one_ns = 1e-6;
  const double hundred_ns = 1e-4;
  for (int i = 0; i < 100; ++i) {
    h.Record(i % 2 == 0 ? one_ns : hundred_ns);
  }
  EXPECT_NEAR(h.Percentile(0.25), one_ns, one_ns * 0.05);
  EXPECT_NEAR(h.Percentile(0.99), hundred_ns, hundred_ns * 0.05);
}

TEST(HistogramTest, SubNanosecondValuesStayOrdered) {
  Histogram h;
  h.Record(1e-9);
  h.Record(1e-6);
  h.Record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.Percentile(0.01), 1e-9, 1e-9 * 0.1);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1.0);
}

TEST(ConcurrentHistogramTest, ParallelRecording) {
  ConcurrentHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) {
        h.Record(1.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.Snapshot().count(), 4000u);
}

class HistogramAccuracyTest : public ::testing::TestWithParam<double> {};

// Bucket resolution (32 sub-buckets per octave) bounds relative error ~3%.
TEST_P(HistogramAccuracyTest, RelativeErrorBounded) {
  Histogram h;
  const double value = GetParam();
  for (int i = 0; i < 100; ++i) {
    h.Record(value);
  }
  EXPECT_NEAR(h.Percentile(0.5), value, value * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, HistogramAccuracyTest,
                         ::testing::Values(1e-6, 0.001, 0.5, 3.7, 128.0, 9999.0, 5e7));

}  // namespace
}  // namespace antipode
