#include "src/common/object_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace antipode {
namespace {

struct Payload {
  std::string key;
  std::string bytes;
  uint64_t version = 0;
};

TEST(ObjectPoolTest, AcquireNeverReturnsNull) {
  ObjectPool<Payload> pool(/*slab_size=*/4);
  std::vector<Payload*> objs;
  for (int i = 0; i < 100; ++i) {
    Payload* p = pool.Acquire();
    ASSERT_NE(p, nullptr);
    objs.push_back(p);
  }
  // 100 outstanding across slabs of 4 → at least 25 slabs.
  auto stats = pool.stats();
  EXPECT_EQ(stats.outstanding, 100u);
  EXPECT_GE(stats.capacity, 100u);
  for (Payload* p : objs) {
    pool.Release(p);
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(ObjectPoolTest, AcquiredPointersAreDistinct) {
  ObjectPool<Payload> pool(/*slab_size=*/8);
  std::set<Payload*> seen;
  std::vector<Payload*> objs;
  for (int i = 0; i < 64; ++i) {
    Payload* p = pool.Acquire();
    EXPECT_TRUE(seen.insert(p).second) << "duplicate pointer handed out";
    objs.push_back(p);
  }
  for (Payload* p : objs) {
    pool.Release(p);
  }
}

TEST(ObjectPoolTest, RecycledObjectKeepsStringCapacity) {
  ObjectPool<Payload> pool(/*slab_size=*/2);
  Payload* p = pool.Acquire();
  p->bytes.assign(1024, 'x');
  const size_t grown_capacity = p->bytes.capacity();
  p->bytes.clear();  // shrink size, keep capacity — the pooled-reuse contract
  pool.Release(p);

  Payload* q = pool.Acquire();
  // Same-thread release→acquire hits the same stripe, so we get p back.
  ASSERT_EQ(q, p);
  EXPECT_GE(q->bytes.capacity(), grown_capacity);
  pool.Release(q);
}

TEST(ObjectPoolTest, GrowsUnderExhaustion) {
  ObjectPool<Payload> pool(/*slab_size=*/2);
  EXPECT_EQ(pool.stats().slabs, 0u);
  Payload* a = pool.Acquire();
  EXPECT_EQ(pool.stats().slabs, 1u);
  Payload* b = pool.Acquire();
  Payload* c = pool.Acquire();  // exhausts slab 1 → grows
  EXPECT_GE(pool.stats().slabs, 2u);
  pool.Release(a);
  pool.Release(b);
  pool.Release(c);
}

// Concurrent acquire/release churn; suite name matches the tsan preset's
// Pool filter so this runs under TSan.
TEST(ObjectPoolStressTest, ConcurrentAcquireRelease) {
  ObjectPool<Payload> pool(/*slab_size=*/16);
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<uint64_t> churn{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<Payload*> held;
      held.reserve(8);
      for (int i = 0; i < kIters; ++i) {
        Payload* p = pool.Acquire();
        p->version = static_cast<uint64_t>(t) * kIters + i;
        p->key = "k";
        held.push_back(p);
        if (held.size() >= 8 || (i & 3) == 0) {
          churn.fetch_add(held.back()->version, std::memory_order_relaxed);
          pool.Release(held.back());
          held.pop_back();
        }
      }
      for (Payload* p : held) {
        pool.Release(p);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_GT(churn.load(), 0u);
}

TEST(ObjectPoolStressTest, CrossThreadReleaseIsSafe) {
  // Producer acquires, consumer releases — objects migrate between stripes.
  ObjectPool<Payload> pool(/*slab_size=*/8);
  std::mutex mu;
  std::vector<Payload*> handoff;
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (int i = 0; i < 10000; ++i) {
      Payload* p = pool.Acquire();
      p->version = i;
      std::lock_guard<std::mutex> lock(mu);
      handoff.push_back(p);
    }
    done.store(true);
  });
  std::thread consumer([&] {
    int released = 0;
    while (released < 10000) {
      std::vector<Payload*> batch;
      {
        std::lock_guard<std::mutex> lock(mu);
        batch.swap(handoff);
      }
      for (Payload* p : batch) {
        pool.Release(p);
        ++released;
      }
      if (batch.empty() && !done.load()) {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

}  // namespace
}  // namespace antipode
