# Empty dependencies file for antipode_baseline.
# This may be replaced when dependencies are built.
