file(REMOVE_RECURSE
  "libantipode_baseline.a"
)
