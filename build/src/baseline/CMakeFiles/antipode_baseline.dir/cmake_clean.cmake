file(REMOVE_RECURSE
  "CMakeFiles/antipode_baseline.dir/flight_tracker.cc.o"
  "CMakeFiles/antipode_baseline.dir/flight_tracker.cc.o.d"
  "CMakeFiles/antipode_baseline.dir/vector_clock.cc.o"
  "CMakeFiles/antipode_baseline.dir/vector_clock.cc.o.d"
  "libantipode_baseline.a"
  "libantipode_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
