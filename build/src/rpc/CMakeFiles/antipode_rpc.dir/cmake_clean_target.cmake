file(REMOVE_RECURSE
  "libantipode_rpc.a"
)
