# Empty compiler generated dependencies file for antipode_rpc.
# This may be replaced when dependencies are built.
