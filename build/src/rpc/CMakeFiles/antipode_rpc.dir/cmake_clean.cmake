file(REMOVE_RECURSE
  "CMakeFiles/antipode_rpc.dir/rpc.cc.o"
  "CMakeFiles/antipode_rpc.dir/rpc.cc.o.d"
  "libantipode_rpc.a"
  "libantipode_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
