# Empty compiler generated dependencies file for antipode_trace.
# This may be replaced when dependencies are built.
