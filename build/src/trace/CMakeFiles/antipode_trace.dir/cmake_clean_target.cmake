file(REMOVE_RECURSE
  "libantipode_trace.a"
)
