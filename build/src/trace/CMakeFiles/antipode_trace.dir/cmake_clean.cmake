file(REMOVE_RECURSE
  "CMakeFiles/antipode_trace.dir/call_graph.cc.o"
  "CMakeFiles/antipode_trace.dir/call_graph.cc.o.d"
  "libantipode_trace.a"
  "libantipode_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
