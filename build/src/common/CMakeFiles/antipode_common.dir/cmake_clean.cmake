file(REMOVE_RECURSE
  "CMakeFiles/antipode_common.dir/clock.cc.o"
  "CMakeFiles/antipode_common.dir/clock.cc.o.d"
  "CMakeFiles/antipode_common.dir/histogram.cc.o"
  "CMakeFiles/antipode_common.dir/histogram.cc.o.d"
  "CMakeFiles/antipode_common.dir/logging.cc.o"
  "CMakeFiles/antipode_common.dir/logging.cc.o.d"
  "CMakeFiles/antipode_common.dir/random.cc.o"
  "CMakeFiles/antipode_common.dir/random.cc.o.d"
  "CMakeFiles/antipode_common.dir/status.cc.o"
  "CMakeFiles/antipode_common.dir/status.cc.o.d"
  "CMakeFiles/antipode_common.dir/thread_pool.cc.o"
  "CMakeFiles/antipode_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/antipode_common.dir/timer_service.cc.o"
  "CMakeFiles/antipode_common.dir/timer_service.cc.o.d"
  "libantipode_common.a"
  "libantipode_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
