# Empty compiler generated dependencies file for antipode_common.
# This may be replaced when dependencies are built.
