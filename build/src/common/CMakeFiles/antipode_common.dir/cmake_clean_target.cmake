file(REMOVE_RECURSE
  "libantipode_common.a"
)
