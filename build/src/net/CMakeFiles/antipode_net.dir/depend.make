# Empty dependencies file for antipode_net.
# This may be replaced when dependencies are built.
