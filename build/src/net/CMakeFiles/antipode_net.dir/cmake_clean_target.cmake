file(REMOVE_RECURSE
  "libantipode_net.a"
)
