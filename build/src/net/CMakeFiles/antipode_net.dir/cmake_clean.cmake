file(REMOVE_RECURSE
  "CMakeFiles/antipode_net.dir/latency_model.cc.o"
  "CMakeFiles/antipode_net.dir/latency_model.cc.o.d"
  "CMakeFiles/antipode_net.dir/network.cc.o"
  "CMakeFiles/antipode_net.dir/network.cc.o.d"
  "CMakeFiles/antipode_net.dir/region.cc.o"
  "CMakeFiles/antipode_net.dir/region.cc.o.d"
  "CMakeFiles/antipode_net.dir/topology.cc.o"
  "CMakeFiles/antipode_net.dir/topology.cc.o.d"
  "libantipode_net.a"
  "libantipode_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
