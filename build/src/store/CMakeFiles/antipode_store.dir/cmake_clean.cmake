file(REMOVE_RECURSE
  "CMakeFiles/antipode_store.dir/doc_store.cc.o"
  "CMakeFiles/antipode_store.dir/doc_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/dynamo_store.cc.o"
  "CMakeFiles/antipode_store.dir/dynamo_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/kv_store.cc.o"
  "CMakeFiles/antipode_store.dir/kv_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/object_store.cc.o"
  "CMakeFiles/antipode_store.dir/object_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/pubsub_store.cc.o"
  "CMakeFiles/antipode_store.dir/pubsub_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/queue_store.cc.o"
  "CMakeFiles/antipode_store.dir/queue_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/replicated_store.cc.o"
  "CMakeFiles/antipode_store.dir/replicated_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/replication_profile.cc.o"
  "CMakeFiles/antipode_store.dir/replication_profile.cc.o.d"
  "CMakeFiles/antipode_store.dir/sql_store.cc.o"
  "CMakeFiles/antipode_store.dir/sql_store.cc.o.d"
  "CMakeFiles/antipode_store.dir/value.cc.o"
  "CMakeFiles/antipode_store.dir/value.cc.o.d"
  "libantipode_store.a"
  "libantipode_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
