
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/doc_store.cc" "src/store/CMakeFiles/antipode_store.dir/doc_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/doc_store.cc.o.d"
  "/root/repo/src/store/dynamo_store.cc" "src/store/CMakeFiles/antipode_store.dir/dynamo_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/dynamo_store.cc.o.d"
  "/root/repo/src/store/kv_store.cc" "src/store/CMakeFiles/antipode_store.dir/kv_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/kv_store.cc.o.d"
  "/root/repo/src/store/object_store.cc" "src/store/CMakeFiles/antipode_store.dir/object_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/object_store.cc.o.d"
  "/root/repo/src/store/pubsub_store.cc" "src/store/CMakeFiles/antipode_store.dir/pubsub_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/pubsub_store.cc.o.d"
  "/root/repo/src/store/queue_store.cc" "src/store/CMakeFiles/antipode_store.dir/queue_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/queue_store.cc.o.d"
  "/root/repo/src/store/replicated_store.cc" "src/store/CMakeFiles/antipode_store.dir/replicated_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/replicated_store.cc.o.d"
  "/root/repo/src/store/replication_profile.cc" "src/store/CMakeFiles/antipode_store.dir/replication_profile.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/replication_profile.cc.o.d"
  "/root/repo/src/store/sql_store.cc" "src/store/CMakeFiles/antipode_store.dir/sql_store.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/sql_store.cc.o.d"
  "/root/repo/src/store/value.cc" "src/store/CMakeFiles/antipode_store.dir/value.cc.o" "gcc" "src/store/CMakeFiles/antipode_store.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/antipode_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/antipode_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
