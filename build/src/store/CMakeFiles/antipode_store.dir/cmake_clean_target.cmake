file(REMOVE_RECURSE
  "libantipode_store.a"
)
