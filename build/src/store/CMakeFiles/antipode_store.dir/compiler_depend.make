# Empty compiler generated dependencies file for antipode_store.
# This may be replaced when dependencies are built.
