file(REMOVE_RECURSE
  "CMakeFiles/antipode_apps.dir/hotel_reservation/hotel_reservation.cc.o"
  "CMakeFiles/antipode_apps.dir/hotel_reservation/hotel_reservation.cc.o.d"
  "CMakeFiles/antipode_apps.dir/media_service/media_service.cc.o"
  "CMakeFiles/antipode_apps.dir/media_service/media_service.cc.o.d"
  "CMakeFiles/antipode_apps.dir/post_notification/post_notification.cc.o"
  "CMakeFiles/antipode_apps.dir/post_notification/post_notification.cc.o.d"
  "CMakeFiles/antipode_apps.dir/social_network/social_network.cc.o"
  "CMakeFiles/antipode_apps.dir/social_network/social_network.cc.o.d"
  "CMakeFiles/antipode_apps.dir/train_ticket/train_ticket.cc.o"
  "CMakeFiles/antipode_apps.dir/train_ticket/train_ticket.cc.o.d"
  "CMakeFiles/antipode_apps.dir/workload.cc.o"
  "CMakeFiles/antipode_apps.dir/workload.cc.o.d"
  "libantipode_apps.a"
  "libantipode_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
