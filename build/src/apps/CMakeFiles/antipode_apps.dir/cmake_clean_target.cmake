file(REMOVE_RECURSE
  "libantipode_apps.a"
)
