
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/hotel_reservation/hotel_reservation.cc" "src/apps/CMakeFiles/antipode_apps.dir/hotel_reservation/hotel_reservation.cc.o" "gcc" "src/apps/CMakeFiles/antipode_apps.dir/hotel_reservation/hotel_reservation.cc.o.d"
  "/root/repo/src/apps/media_service/media_service.cc" "src/apps/CMakeFiles/antipode_apps.dir/media_service/media_service.cc.o" "gcc" "src/apps/CMakeFiles/antipode_apps.dir/media_service/media_service.cc.o.d"
  "/root/repo/src/apps/post_notification/post_notification.cc" "src/apps/CMakeFiles/antipode_apps.dir/post_notification/post_notification.cc.o" "gcc" "src/apps/CMakeFiles/antipode_apps.dir/post_notification/post_notification.cc.o.d"
  "/root/repo/src/apps/social_network/social_network.cc" "src/apps/CMakeFiles/antipode_apps.dir/social_network/social_network.cc.o" "gcc" "src/apps/CMakeFiles/antipode_apps.dir/social_network/social_network.cc.o.d"
  "/root/repo/src/apps/train_ticket/train_ticket.cc" "src/apps/CMakeFiles/antipode_apps.dir/train_ticket/train_ticket.cc.o" "gcc" "src/apps/CMakeFiles/antipode_apps.dir/train_ticket/train_ticket.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/apps/CMakeFiles/antipode_apps.dir/workload.cc.o" "gcc" "src/apps/CMakeFiles/antipode_apps.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/antipode/CMakeFiles/antipode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/antipode_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/antipode_store.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/antipode_context.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/antipode_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/antipode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
