# Empty dependencies file for antipode_apps.
# This may be replaced when dependencies are built.
