file(REMOVE_RECURSE
  "libantipode_core.a"
)
