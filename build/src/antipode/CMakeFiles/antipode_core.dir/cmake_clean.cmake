file(REMOVE_RECURSE
  "CMakeFiles/antipode_core.dir/barrier.cc.o"
  "CMakeFiles/antipode_core.dir/barrier.cc.o.d"
  "CMakeFiles/antipode_core.dir/checker.cc.o"
  "CMakeFiles/antipode_core.dir/checker.cc.o.d"
  "CMakeFiles/antipode_core.dir/doc_shim.cc.o"
  "CMakeFiles/antipode_core.dir/doc_shim.cc.o.d"
  "CMakeFiles/antipode_core.dir/dynamo_shim.cc.o"
  "CMakeFiles/antipode_core.dir/dynamo_shim.cc.o.d"
  "CMakeFiles/antipode_core.dir/framing.cc.o"
  "CMakeFiles/antipode_core.dir/framing.cc.o.d"
  "CMakeFiles/antipode_core.dir/history_checker.cc.o"
  "CMakeFiles/antipode_core.dir/history_checker.cc.o.d"
  "CMakeFiles/antipode_core.dir/kv_shim.cc.o"
  "CMakeFiles/antipode_core.dir/kv_shim.cc.o.d"
  "CMakeFiles/antipode_core.dir/lineage.cc.o"
  "CMakeFiles/antipode_core.dir/lineage.cc.o.d"
  "CMakeFiles/antipode_core.dir/lineage_api.cc.o"
  "CMakeFiles/antipode_core.dir/lineage_api.cc.o.d"
  "CMakeFiles/antipode_core.dir/object_shim.cc.o"
  "CMakeFiles/antipode_core.dir/object_shim.cc.o.d"
  "CMakeFiles/antipode_core.dir/queue_shim.cc.o"
  "CMakeFiles/antipode_core.dir/queue_shim.cc.o.d"
  "CMakeFiles/antipode_core.dir/session.cc.o"
  "CMakeFiles/antipode_core.dir/session.cc.o.d"
  "CMakeFiles/antipode_core.dir/shim.cc.o"
  "CMakeFiles/antipode_core.dir/shim.cc.o.d"
  "CMakeFiles/antipode_core.dir/sql_shim.cc.o"
  "CMakeFiles/antipode_core.dir/sql_shim.cc.o.d"
  "libantipode_core.a"
  "libantipode_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
