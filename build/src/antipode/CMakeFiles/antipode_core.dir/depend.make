# Empty dependencies file for antipode_core.
# This may be replaced when dependencies are built.
