
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/antipode/barrier.cc" "src/antipode/CMakeFiles/antipode_core.dir/barrier.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/barrier.cc.o.d"
  "/root/repo/src/antipode/checker.cc" "src/antipode/CMakeFiles/antipode_core.dir/checker.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/checker.cc.o.d"
  "/root/repo/src/antipode/doc_shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/doc_shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/doc_shim.cc.o.d"
  "/root/repo/src/antipode/dynamo_shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/dynamo_shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/dynamo_shim.cc.o.d"
  "/root/repo/src/antipode/framing.cc" "src/antipode/CMakeFiles/antipode_core.dir/framing.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/framing.cc.o.d"
  "/root/repo/src/antipode/history_checker.cc" "src/antipode/CMakeFiles/antipode_core.dir/history_checker.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/history_checker.cc.o.d"
  "/root/repo/src/antipode/kv_shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/kv_shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/kv_shim.cc.o.d"
  "/root/repo/src/antipode/lineage.cc" "src/antipode/CMakeFiles/antipode_core.dir/lineage.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/lineage.cc.o.d"
  "/root/repo/src/antipode/lineage_api.cc" "src/antipode/CMakeFiles/antipode_core.dir/lineage_api.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/lineage_api.cc.o.d"
  "/root/repo/src/antipode/object_shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/object_shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/object_shim.cc.o.d"
  "/root/repo/src/antipode/queue_shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/queue_shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/queue_shim.cc.o.d"
  "/root/repo/src/antipode/session.cc" "src/antipode/CMakeFiles/antipode_core.dir/session.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/session.cc.o.d"
  "/root/repo/src/antipode/shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/shim.cc.o.d"
  "/root/repo/src/antipode/sql_shim.cc" "src/antipode/CMakeFiles/antipode_core.dir/sql_shim.cc.o" "gcc" "src/antipode/CMakeFiles/antipode_core.dir/sql_shim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/antipode_common.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/antipode_context.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/antipode_net.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/antipode_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
