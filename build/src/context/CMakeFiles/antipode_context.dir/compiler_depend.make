# Empty compiler generated dependencies file for antipode_context.
# This may be replaced when dependencies are built.
