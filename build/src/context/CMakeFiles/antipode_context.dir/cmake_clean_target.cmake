file(REMOVE_RECURSE
  "libantipode_context.a"
)
