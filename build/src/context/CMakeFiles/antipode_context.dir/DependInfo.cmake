
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/context/baggage.cc" "src/context/CMakeFiles/antipode_context.dir/baggage.cc.o" "gcc" "src/context/CMakeFiles/antipode_context.dir/baggage.cc.o.d"
  "/root/repo/src/context/merge.cc" "src/context/CMakeFiles/antipode_context.dir/merge.cc.o" "gcc" "src/context/CMakeFiles/antipode_context.dir/merge.cc.o.d"
  "/root/repo/src/context/request_context.cc" "src/context/CMakeFiles/antipode_context.dir/request_context.cc.o" "gcc" "src/context/CMakeFiles/antipode_context.dir/request_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/antipode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
