file(REMOVE_RECURSE
  "CMakeFiles/antipode_context.dir/baggage.cc.o"
  "CMakeFiles/antipode_context.dir/baggage.cc.o.d"
  "CMakeFiles/antipode_context.dir/merge.cc.o"
  "CMakeFiles/antipode_context.dir/merge.cc.o.d"
  "CMakeFiles/antipode_context.dir/request_context.cc.o"
  "CMakeFiles/antipode_context.dir/request_context.cc.o.d"
  "libantipode_context.a"
  "libantipode_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
