# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/context_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/rpc_tests[1]_include.cmake")
include("/root/repo/build/tests/store_tests[1]_include.cmake")
include("/root/repo/build/tests/antipode_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
include("/root/repo/build/tests/trace_tests[1]_include.cmake")
include("/root/repo/build/tests/baseline_tests[1]_include.cmake")
