# Empty dependencies file for baseline_tests.
# This may be replaced when dependencies are built.
