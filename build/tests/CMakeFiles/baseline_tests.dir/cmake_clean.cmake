file(REMOVE_RECURSE
  "CMakeFiles/baseline_tests.dir/baseline/baseline_test.cc.o"
  "CMakeFiles/baseline_tests.dir/baseline/baseline_test.cc.o.d"
  "CMakeFiles/baseline_tests.dir/baseline/flight_tracker_test.cc.o"
  "CMakeFiles/baseline_tests.dir/baseline/flight_tracker_test.cc.o.d"
  "baseline_tests"
  "baseline_tests.pdb"
  "baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
