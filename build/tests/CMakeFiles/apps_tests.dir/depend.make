# Empty dependencies file for apps_tests.
# This may be replaced when dependencies are built.
