file(REMOVE_RECURSE
  "CMakeFiles/apps_tests.dir/apps/apps_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/apps_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/end_to_end_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/end_to_end_test.cc.o.d"
  "CMakeFiles/apps_tests.dir/apps/media_hotel_test.cc.o"
  "CMakeFiles/apps_tests.dir/apps/media_hotel_test.cc.o.d"
  "apps_tests"
  "apps_tests.pdb"
  "apps_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
