file(REMOVE_RECURSE
  "CMakeFiles/rpc_tests.dir/rpc/rpc_test.cc.o"
  "CMakeFiles/rpc_tests.dir/rpc/rpc_test.cc.o.d"
  "rpc_tests"
  "rpc_tests.pdb"
  "rpc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
