# Empty compiler generated dependencies file for rpc_tests.
# This may be replaced when dependencies are built.
