file(REMOVE_RECURSE
  "CMakeFiles/store_tests.dir/store/brokers_test.cc.o"
  "CMakeFiles/store_tests.dir/store/brokers_test.cc.o.d"
  "CMakeFiles/store_tests.dir/store/failure_injection_test.cc.o"
  "CMakeFiles/store_tests.dir/store/failure_injection_test.cc.o.d"
  "CMakeFiles/store_tests.dir/store/replicated_store_test.cc.o"
  "CMakeFiles/store_tests.dir/store/replicated_store_test.cc.o.d"
  "CMakeFiles/store_tests.dir/store/store_extensions_test.cc.o"
  "CMakeFiles/store_tests.dir/store/store_extensions_test.cc.o.d"
  "CMakeFiles/store_tests.dir/store/stores_test.cc.o"
  "CMakeFiles/store_tests.dir/store/stores_test.cc.o.d"
  "CMakeFiles/store_tests.dir/store/value_test.cc.o"
  "CMakeFiles/store_tests.dir/store/value_test.cc.o.d"
  "store_tests"
  "store_tests.pdb"
  "store_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
