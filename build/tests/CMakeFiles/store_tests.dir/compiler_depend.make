# Empty compiler generated dependencies file for store_tests.
# This may be replaced when dependencies are built.
