# Empty compiler generated dependencies file for antipode_tests.
# This may be replaced when dependencies are built.
