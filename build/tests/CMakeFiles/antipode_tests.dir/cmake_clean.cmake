file(REMOVE_RECURSE
  "CMakeFiles/antipode_tests.dir/antipode/barrier_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/barrier_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/checker_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/checker_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/framing_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/framing_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/history_checker_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/history_checker_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/lineage_api_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/lineage_api_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/lineage_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/lineage_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/session_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/session_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/shim_property_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/shim_property_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/shims_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/shims_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/stress_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/stress_test.cc.o.d"
  "CMakeFiles/antipode_tests.dir/antipode/xcy_property_test.cc.o"
  "CMakeFiles/antipode_tests.dir/antipode/xcy_property_test.cc.o.d"
  "antipode_tests"
  "antipode_tests.pdb"
  "antipode_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antipode_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
