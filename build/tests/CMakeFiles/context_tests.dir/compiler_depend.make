# Empty compiler generated dependencies file for context_tests.
# This may be replaced when dependencies are built.
