file(REMOVE_RECURSE
  "CMakeFiles/context_tests.dir/context/context_test.cc.o"
  "CMakeFiles/context_tests.dir/context/context_test.cc.o.d"
  "context_tests"
  "context_tests.pdb"
  "context_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
