# Empty dependencies file for net_tests.
# This may be replaced when dependencies are built.
