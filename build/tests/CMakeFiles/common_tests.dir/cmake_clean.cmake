file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/blocking_queue_test.cc.o"
  "CMakeFiles/common_tests.dir/common/blocking_queue_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/clock_test.cc.o"
  "CMakeFiles/common_tests.dir/common/clock_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/histogram_test.cc.o"
  "CMakeFiles/common_tests.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/random_test.cc.o"
  "CMakeFiles/common_tests.dir/common/random_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/serialization_test.cc.o"
  "CMakeFiles/common_tests.dir/common/serialization_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o.d"
  "CMakeFiles/common_tests.dir/common/timer_service_test.cc.o"
  "CMakeFiles/common_tests.dir/common/timer_service_test.cc.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
