
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/blocking_queue_test.cc" "tests/CMakeFiles/common_tests.dir/common/blocking_queue_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/blocking_queue_test.cc.o.d"
  "/root/repo/tests/common/clock_test.cc" "tests/CMakeFiles/common_tests.dir/common/clock_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/clock_test.cc.o.d"
  "/root/repo/tests/common/histogram_test.cc" "tests/CMakeFiles/common_tests.dir/common/histogram_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/histogram_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/common_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/serialization_test.cc" "tests/CMakeFiles/common_tests.dir/common/serialization_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/serialization_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/common_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/common/timer_service_test.cc" "tests/CMakeFiles/common_tests.dir/common/timer_service_test.cc.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/timer_service_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/antipode_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/antipode/CMakeFiles/antipode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/antipode_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/antipode_store.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/antipode_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/antipode_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/antipode_context.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/antipode_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/antipode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
