file(REMOVE_RECURSE
  "CMakeFiles/fig9_trainticket.dir/fig9_trainticket.cpp.o"
  "CMakeFiles/fig9_trainticket.dir/fig9_trainticket.cpp.o.d"
  "fig9_trainticket"
  "fig9_trainticket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_trainticket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
