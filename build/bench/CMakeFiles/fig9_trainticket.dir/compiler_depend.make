# Empty compiler generated dependencies file for fig9_trainticket.
# This may be replaced when dependencies are built.
