file(REMOVE_RECURSE
  "CMakeFiles/ablation_flighttracker.dir/ablation_flighttracker.cpp.o"
  "CMakeFiles/ablation_flighttracker.dir/ablation_flighttracker.cpp.o.d"
  "ablation_flighttracker"
  "ablation_flighttracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flighttracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
