# Empty compiler generated dependencies file for ablation_flighttracker.
# This may be replaced when dependencies are built.
