file(REMOVE_RECURSE
  "CMakeFiles/table1_inconsistencies.dir/table1_inconsistencies.cpp.o"
  "CMakeFiles/table1_inconsistencies.dir/table1_inconsistencies.cpp.o.d"
  "table1_inconsistencies"
  "table1_inconsistencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_inconsistencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
