# Empty dependencies file for table1_inconsistencies.
# This may be replaced when dependencies are built.
