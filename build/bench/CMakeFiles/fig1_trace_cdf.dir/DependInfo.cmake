
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_trace_cdf.cpp" "bench/CMakeFiles/fig1_trace_cdf.dir/fig1_trace_cdf.cpp.o" "gcc" "bench/CMakeFiles/fig1_trace_cdf.dir/fig1_trace_cdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/antipode_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/antipode_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/antipode_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/antipode_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/antipode/CMakeFiles/antipode_core.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/antipode_store.dir/DependInfo.cmake"
  "/root/repo/build/src/context/CMakeFiles/antipode_context.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/antipode_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/antipode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
