file(REMOVE_RECURSE
  "CMakeFiles/fig1_trace_cdf.dir/fig1_trace_cdf.cpp.o"
  "CMakeFiles/fig1_trace_cdf.dir/fig1_trace_cdf.cpp.o.d"
  "fig1_trace_cdf"
  "fig1_trace_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_trace_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
