# Empty compiler generated dependencies file for fig1_trace_cdf.
# This may be replaced when dependencies are built.
