file(REMOVE_RECURSE
  "CMakeFiles/table3_object_overhead.dir/table3_object_overhead.cpp.o"
  "CMakeFiles/table3_object_overhead.dir/table3_object_overhead.cpp.o.d"
  "table3_object_overhead"
  "table3_object_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_object_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
