# Empty compiler generated dependencies file for table3_object_overhead.
# This may be replaced when dependencies are built.
