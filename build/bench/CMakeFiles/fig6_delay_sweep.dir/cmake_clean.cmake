file(REMOVE_RECURSE
  "CMakeFiles/fig6_delay_sweep.dir/fig6_delay_sweep.cpp.o"
  "CMakeFiles/fig6_delay_sweep.dir/fig6_delay_sweep.cpp.o.d"
  "fig6_delay_sweep"
  "fig6_delay_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_delay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
