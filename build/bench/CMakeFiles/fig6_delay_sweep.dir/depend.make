# Empty dependencies file for fig6_delay_sweep.
# This may be replaced when dependencies are built.
