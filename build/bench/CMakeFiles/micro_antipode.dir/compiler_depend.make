# Empty compiler generated dependencies file for micro_antipode.
# This may be replaced when dependencies are built.
