file(REMOVE_RECURSE
  "CMakeFiles/micro_antipode.dir/micro_antipode.cpp.o"
  "CMakeFiles/micro_antipode.dir/micro_antipode.cpp.o.d"
  "micro_antipode"
  "micro_antipode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_antipode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
