file(REMOVE_RECURSE
  "CMakeFiles/media_service_violations.dir/media_service_violations.cpp.o"
  "CMakeFiles/media_service_violations.dir/media_service_violations.cpp.o.d"
  "media_service_violations"
  "media_service_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_service_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
