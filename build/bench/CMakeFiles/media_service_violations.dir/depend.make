# Empty dependencies file for media_service_violations.
# This may be replaced when dependencies are built.
