file(REMOVE_RECURSE
  "CMakeFiles/fig7_consistency_window.dir/fig7_consistency_window.cpp.o"
  "CMakeFiles/fig7_consistency_window.dir/fig7_consistency_window.cpp.o.d"
  "fig7_consistency_window"
  "fig7_consistency_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_consistency_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
