# Empty dependencies file for fig7_consistency_window.
# This may be replaced when dependencies are built.
