file(REMOVE_RECURSE
  "CMakeFiles/ablation_barrier_placement.dir/ablation_barrier_placement.cpp.o"
  "CMakeFiles/ablation_barrier_placement.dir/ablation_barrier_placement.cpp.o.d"
  "ablation_barrier_placement"
  "ablation_barrier_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_barrier_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
