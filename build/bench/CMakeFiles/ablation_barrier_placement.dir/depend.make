# Empty dependencies file for ablation_barrier_placement.
# This may be replaced when dependencies are built.
