# Empty compiler generated dependencies file for ablation_tracking.
# This may be replaced when dependencies are built.
