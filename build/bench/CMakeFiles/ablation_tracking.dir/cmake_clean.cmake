file(REMOVE_RECURSE
  "CMakeFiles/ablation_tracking.dir/ablation_tracking.cpp.o"
  "CMakeFiles/ablation_tracking.dir/ablation_tracking.cpp.o.d"
  "ablation_tracking"
  "ablation_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
