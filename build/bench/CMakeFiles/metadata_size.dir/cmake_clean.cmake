file(REMOVE_RECURSE
  "CMakeFiles/metadata_size.dir/metadata_size.cpp.o"
  "CMakeFiles/metadata_size.dir/metadata_size.cpp.o.d"
  "metadata_size"
  "metadata_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
