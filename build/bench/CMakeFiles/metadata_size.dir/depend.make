# Empty dependencies file for metadata_size.
# This may be replaced when dependencies are built.
