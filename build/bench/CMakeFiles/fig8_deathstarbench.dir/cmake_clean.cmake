file(REMOVE_RECURSE
  "CMakeFiles/fig8_deathstarbench.dir/fig8_deathstarbench.cpp.o"
  "CMakeFiles/fig8_deathstarbench.dir/fig8_deathstarbench.cpp.o.d"
  "fig8_deathstarbench"
  "fig8_deathstarbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_deathstarbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
