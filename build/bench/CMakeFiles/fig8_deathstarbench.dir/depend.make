# Empty dependencies file for fig8_deathstarbench.
# This may be replaced when dependencies are built.
