# Empty compiler generated dependencies file for session_ryw.
# This may be replaced when dependencies are built.
