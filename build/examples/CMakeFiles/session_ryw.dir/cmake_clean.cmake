file(REMOVE_RECURSE
  "CMakeFiles/session_ryw.dir/session_ryw.cpp.o"
  "CMakeFiles/session_ryw.dir/session_ryw.cpp.o.d"
  "session_ryw"
  "session_ryw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_ryw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
