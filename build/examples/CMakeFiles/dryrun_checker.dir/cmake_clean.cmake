file(REMOVE_RECURSE
  "CMakeFiles/dryrun_checker.dir/dryrun_checker.cpp.o"
  "CMakeFiles/dryrun_checker.dir/dryrun_checker.cpp.o.d"
  "dryrun_checker"
  "dryrun_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dryrun_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
