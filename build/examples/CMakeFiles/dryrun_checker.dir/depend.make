# Empty dependencies file for dryrun_checker.
# This may be replaced when dependencies are built.
