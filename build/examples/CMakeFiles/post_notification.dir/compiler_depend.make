# Empty compiler generated dependencies file for post_notification.
# This may be replaced when dependencies are built.
