file(REMOVE_RECURSE
  "CMakeFiles/post_notification.dir/post_notification.cpp.o"
  "CMakeFiles/post_notification.dir/post_notification.cpp.o.d"
  "post_notification"
  "post_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
