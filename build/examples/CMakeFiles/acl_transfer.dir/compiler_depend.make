# Empty compiler generated dependencies file for acl_transfer.
# This may be replaced when dependencies are built.
