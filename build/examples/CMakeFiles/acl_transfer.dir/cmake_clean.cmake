file(REMOVE_RECURSE
  "CMakeFiles/acl_transfer.dir/acl_transfer.cpp.o"
  "CMakeFiles/acl_transfer.dir/acl_transfer.cpp.o.d"
  "acl_transfer"
  "acl_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
